//! Experiments as data: the declarative, serialisable [`ExperimentSpec`].
//!
//! The paper's methodology is a *campaign of parameterised runs* —
//! kernels × arbiters × topologies × core counts — and before this
//! module every such campaign could only be described in Rust code.
//! An `ExperimentSpec` makes the whole experiment a value:
//!
//! * a **machine** section mirroring [`MachineConfig`] field by field,
//!   topology included ([`MachineSpec`]);
//! * an optional **grid** section carrying the scenario kind and the
//!   sweep axes of a [`CampaignGrid`] ([`GridSpec`]);
//! * a list of explicit **workload** cases, each a scua
//!   [`KernelSpec`] against declarative contender kernels
//!   ([`WorkloadCase`], executed by [`WorkloadScenario`]).
//!
//! Specs round-trip losslessly through the [`Json`] document model:
//! `ExperimentSpec → Json → text → ExperimentSpec` is the identity, and
//! rendering is deterministic, so a spec file is a stable artifact —
//! [`ExperimentSpec::spec_hash`] digests the canonical rendering into
//! the cache key for campaign-level reuse. Parsing is strict: unknown
//! or duplicate keys are rejected with a field path, so a typo in an
//! analyst's file is an error, not a silently ignored knob.
//!
//! ```
//! use rrb::spec::ExperimentSpec;
//! use rrb::campaign::{CampaignGrid, GridScenario};
//! use rrb_sim::MachineConfig;
//!
//! let grid = CampaignGrid::new(GridScenario::Derive, MachineConfig::toy(4, 2));
//! let spec = ExperimentSpec::from_grid("toy-derive", &grid);
//! let text = spec.to_text();                        // the .json file
//! let back = ExperimentSpec::parse(&text).unwrap(); // rrb run <file>
//! assert_eq!(back, spec);
//! let result = back.to_campaign(1).run();
//! assert_eq!(result.reports[0].metric_u64("ubd_m"), Some(6));
//! ```

use crate::campaign::{Campaign, CampaignGrid, GridScenario, RunSpec};
use crate::json::{fnv1a_64, Json, JsonParseError};
use crate::methodology::MethodologyConfig;
use crate::scenario::{MetricValue, RunOutcome, Scenario, ScenarioError, ScenarioReport};
use rrb_kernels::{AccessKind, AutobenchKernel, KernelSpec};
use rrb_sim::{
    ArbiterKind, BusConfig, CacheConfig, DramConfig, L2Config, MachineConfig, McQueueConfig,
    Replacement, SimError, StoreBufferConfig, Topology,
};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// The schema version this module reads and writes.
pub const SPEC_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why an experiment file could not be read or used.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec file could not be read.
    File {
        /// The path that failed.
        path: String,
        /// The I/O error text.
        error: String,
    },
    /// The text is not valid JSON.
    Parse(JsonParseError),
    /// A field is missing, has the wrong type, carries an unparseable
    /// token, or is unknown to the schema.
    Field {
        /// Dotted path of the offending field (e.g. `machine.dl1.ways`).
        path: String,
        /// What was wrong.
        problem: String,
    },
    /// The spec parsed but cannot describe a runnable experiment.
    Invalid(String),
}

impl SpecError {
    fn field(path: impl Into<String>, problem: impl Into<String>) -> Self {
        SpecError::Field { path: path.into(), problem: problem.into() }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::File { path, error } => {
                write!(f, "cannot read spec file `{path}`: {error}")
            }
            SpecError::Parse(e) => write!(f, "invalid JSON: {e}"),
            SpecError::Field { path, problem } => write!(f, "spec field `{path}`: {problem}"),
            SpecError::Invalid(detail) => write!(f, "invalid experiment spec: {detail}"),
        }
    }
}

impl Error for SpecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpecError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonParseError> for SpecError {
    fn from(e: JsonParseError) -> Self {
        SpecError::Parse(e)
    }
}

// ---------------------------------------------------------------------
// Strict object cursor
// ---------------------------------------------------------------------

/// A strict reader over one JSON object: every schema field must be
/// taken exactly once, and leftover keys are an error. This is what
/// keeps the shipped schema and the parser from drifting apart — a
/// field added to the writer but not the reader (or vice versa) fails
/// the round-trip test immediately.
struct Fields<'a> {
    path: &'a str,
    pairs: &'a [(String, Json)],
    taken: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(v: &'a Json, path: &'a str) -> Result<Self, SpecError> {
        let pairs =
            v.as_object().ok_or_else(|| SpecError::field(path, "expected a JSON object"))?;
        Ok(Fields { path, pairs, taken: vec![false; pairs.len()] })
    }

    fn take(&mut self, key: &str) -> Result<&'a Json, SpecError> {
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if k == key {
                self.taken[i] = true;
                return Ok(v);
            }
        }
        Err(SpecError::field(format!("{}.{key}", self.path), "missing required field"))
    }

    /// Like [`Fields::take`], but absent keys read as `None` — for
    /// fields added to the schema after specs were already in the wild.
    fn take_opt(&mut self, key: &str) -> Option<&'a Json> {
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if k == key {
                self.taken[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn finish(self) -> Result<(), SpecError> {
        for (i, (k, _)) in self.pairs.iter().enumerate() {
            if !self.taken[i] {
                return Err(SpecError::field(
                    format!("{}.{k}", self.path),
                    "unknown field (not part of the spec schema)",
                ));
            }
        }
        Ok(())
    }
}

fn get_u64(v: &Json, path: &str) -> Result<u64, SpecError> {
    v.as_u64().ok_or_else(|| SpecError::field(path, "expected an unsigned integer"))
}

fn get_u32(v: &Json, path: &str) -> Result<u32, SpecError> {
    u32::try_from(get_u64(v, path)?)
        .map_err(|_| SpecError::field(path, "value does not fit in 32 bits"))
}

fn get_usize(v: &Json, path: &str) -> Result<usize, SpecError> {
    usize::try_from(get_u64(v, path)?)
        .map_err(|_| SpecError::field(path, "value does not fit in usize"))
}

fn get_f64(v: &Json, path: &str) -> Result<f64, SpecError> {
    v.as_f64().ok_or_else(|| SpecError::field(path, "expected a number"))
}

fn get_bool(v: &Json, path: &str) -> Result<bool, SpecError> {
    v.as_bool().ok_or_else(|| SpecError::field(path, "expected true or false"))
}

fn get_str<'a>(v: &'a Json, path: &str) -> Result<&'a str, SpecError> {
    v.as_str().ok_or_else(|| SpecError::field(path, "expected a string"))
}

/// Parses a canonical-token field (`arbiter`, `access`, `scenario`, …)
/// through the type's own `FromStr`, echoing its error message.
fn get_token<T>(v: &Json, path: &str) -> Result<T, SpecError>
where
    T: FromStr,
    T::Err: fmt::Display,
{
    get_str(v, path)?.parse().map_err(|e: T::Err| SpecError::field(path, e.to_string()))
}

fn get_array<'a>(v: &'a Json, path: &str) -> Result<&'a [Json], SpecError> {
    v.as_array().ok_or_else(|| SpecError::field(path, "expected an array"))
}

fn token_list<T>(v: &Json, path: &str) -> Result<Vec<T>, SpecError>
where
    T: FromStr,
    T::Err: fmt::Display,
{
    get_array(v, path)?
        .iter()
        .enumerate()
        .map(|(i, item)| get_token(item, &format!("{path}[{i}]")))
        .collect()
}

fn u64_list(v: &Json, path: &str) -> Result<Vec<u64>, SpecError> {
    get_array(v, path)?
        .iter()
        .enumerate()
        .map(|(i, item)| get_u64(item, &format!("{path}[{i}]")))
        .collect()
}

fn usize_list(v: &Json, path: &str) -> Result<Vec<usize>, SpecError> {
    get_array(v, path)?
        .iter()
        .enumerate()
        .map(|(i, item)| get_usize(item, &format!("{path}[{i}]")))
        .collect()
}

// ---------------------------------------------------------------------
// MachineSpec: MachineConfig ⇄ Json
// ---------------------------------------------------------------------

/// The machine section of an experiment file: a [`MachineConfig`]
/// mirrored field by field into JSON, topology included. The mapping is
/// total in both directions — every config is expressible, and parsing
/// an emitted spec reconstructs the config exactly — so experiments
/// carry their platform with them instead of referencing presets that
/// may change meaning between versions.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec(pub MachineConfig);

impl MachineSpec {
    /// The machine as a JSON object.
    pub fn to_json(&self) -> Json {
        let cfg = &self.0;
        Json::obj(vec![
            ("num_cores", Json::U64(cfg.num_cores as u64)),
            ("dl1", cache_to_json(&cfg.dl1)),
            ("il1", cache_to_json(&cfg.il1)),
            ("l2", l2_to_json(&cfg.l2)),
            ("topology", topology_to_json(&cfg.topology)),
            ("dram", dram_to_json(&cfg.dram)),
            (
                "store_buffer",
                Json::obj(vec![("entries", Json::U64(cfg.store_buffer.entries as u64))]),
            ),
            ("nop_latency", Json::U64(cfg.nop_latency)),
            ("branch_latency", Json::U64(cfg.branch_latency)),
            ("max_cycles", Json::U64(cfg.max_cycles)),
            ("record_requests", Json::Bool(cfg.record_requests)),
            ("record_trace", Json::Bool(cfg.record_trace)),
            ("quiescence_skip", Json::Bool(cfg.quiescence_skip)),
            ("period_skip", Json::Bool(cfg.period_skip)),
        ])
    }

    /// Reconstructs the machine from its JSON object.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Field`] naming the offending field path.
    pub fn from_json(v: &Json, path: &str) -> Result<Self, SpecError> {
        let mut f = Fields::new(v, path)?;
        let cfg = MachineConfig {
            num_cores: get_usize(f.take("num_cores")?, &format!("{path}.num_cores"))?,
            dl1: cache_from_json(f.take("dl1")?, &format!("{path}.dl1"))?,
            il1: cache_from_json(f.take("il1")?, &format!("{path}.il1"))?,
            l2: l2_from_json(f.take("l2")?, &format!("{path}.l2"))?,
            topology: topology_from_json(f.take("topology")?, &format!("{path}.topology"))?,
            dram: dram_from_json(f.take("dram")?, &format!("{path}.dram"))?,
            store_buffer: {
                let sb_path = format!("{path}.store_buffer");
                let mut sb = Fields::new(f.take("store_buffer")?, &sb_path)?;
                let entries = get_usize(sb.take("entries")?, &format!("{sb_path}.entries"))?;
                sb.finish()?;
                StoreBufferConfig { entries }
            },
            nop_latency: get_u64(f.take("nop_latency")?, &format!("{path}.nop_latency"))?,
            branch_latency: get_u64(f.take("branch_latency")?, &format!("{path}.branch_latency"))?,
            max_cycles: get_u64(f.take("max_cycles")?, &format!("{path}.max_cycles"))?,
            record_requests: get_bool(
                f.take("record_requests")?,
                &format!("{path}.record_requests"),
            )?,
            record_trace: get_bool(f.take("record_trace")?, &format!("{path}.record_trace"))?,
            quiescence_skip: get_bool(
                f.take("quiescence_skip")?,
                &format!("{path}.quiescence_skip"),
            )?,
            // Added after specs were already in the wild: absent reads
            // as `true`, the preset default, so older files keep their
            // (now faster, still cycle-identical) meaning.
            period_skip: match f.take_opt("period_skip") {
                Some(v) => get_bool(v, &format!("{path}.period_skip"))?,
                None => true,
            },
        };
        f.finish()?;
        Ok(MachineSpec(cfg))
    }
}

fn cache_to_json(c: &CacheConfig) -> Json {
    Json::obj(vec![
        ("size_bytes", Json::U64(c.size_bytes)),
        ("ways", Json::U64(u64::from(c.ways))),
        ("line_bytes", Json::U64(c.line_bytes)),
        ("latency", Json::U64(c.latency)),
        ("replacement", Json::str(c.replacement.to_string())),
    ])
}

fn cache_from_json(v: &Json, path: &str) -> Result<CacheConfig, SpecError> {
    let mut f = Fields::new(v, path)?;
    let c = CacheConfig {
        size_bytes: get_u64(f.take("size_bytes")?, &format!("{path}.size_bytes"))?,
        ways: get_u32(f.take("ways")?, &format!("{path}.ways"))?,
        line_bytes: get_u64(f.take("line_bytes")?, &format!("{path}.line_bytes"))?,
        latency: get_u64(f.take("latency")?, &format!("{path}.latency"))?,
        replacement: get_token::<Replacement>(
            f.take("replacement")?,
            &format!("{path}.replacement"),
        )?,
    };
    f.finish()?;
    Ok(c)
}

fn l2_to_json(l2: &L2Config) -> Json {
    Json::obj(vec![
        ("size_bytes", Json::U64(l2.size_bytes)),
        ("ways", Json::U64(u64::from(l2.ways))),
        ("line_bytes", Json::U64(l2.line_bytes)),
        ("replacement", Json::str(l2.replacement.to_string())),
    ])
}

fn l2_from_json(v: &Json, path: &str) -> Result<L2Config, SpecError> {
    let mut f = Fields::new(v, path)?;
    let l2 = L2Config {
        size_bytes: get_u64(f.take("size_bytes")?, &format!("{path}.size_bytes"))?,
        ways: get_u32(f.take("ways")?, &format!("{path}.ways"))?,
        line_bytes: get_u64(f.take("line_bytes")?, &format!("{path}.line_bytes"))?,
        replacement: get_token::<Replacement>(
            f.take("replacement")?,
            &format!("{path}.replacement"),
        )?,
    };
    f.finish()?;
    Ok(l2)
}

fn topology_to_json(t: &Topology) -> Json {
    Json::obj(vec![
        (
            "bus",
            Json::obj(vec![
                ("l2_hit_occupancy", Json::U64(t.bus.l2_hit_occupancy)),
                ("transfer_occupancy", Json::U64(t.bus.transfer_occupancy)),
                ("store_occupancy", Json::U64(t.bus.store_occupancy)),
                ("arbiter", Json::str(t.bus.arbiter.to_string())),
            ]),
        ),
        (
            "mc",
            Json::option(t.mc, |mc| {
                Json::obj(vec![
                    ("service_occupancy", Json::U64(mc.service_occupancy)),
                    ("arbiter", Json::str(mc.arbiter.to_string())),
                ])
            }),
        ),
    ])
}

fn topology_from_json(v: &Json, path: &str) -> Result<Topology, SpecError> {
    let mut f = Fields::new(v, path)?;
    let bus_path = format!("{path}.bus");
    let mut b = Fields::new(f.take("bus")?, &bus_path)?;
    let bus = BusConfig {
        l2_hit_occupancy: get_u64(
            b.take("l2_hit_occupancy")?,
            &format!("{bus_path}.l2_hit_occupancy"),
        )?,
        transfer_occupancy: get_u64(
            b.take("transfer_occupancy")?,
            &format!("{bus_path}.transfer_occupancy"),
        )?,
        store_occupancy: get_u64(
            b.take("store_occupancy")?,
            &format!("{bus_path}.store_occupancy"),
        )?,
        arbiter: get_token::<ArbiterKind>(b.take("arbiter")?, &format!("{bus_path}.arbiter"))?,
    };
    b.finish()?;
    let mc_value = f.take("mc")?;
    let mc = if mc_value.is_null() {
        None
    } else {
        let mc_path = format!("{path}.mc");
        let mut m = Fields::new(mc_value, &mc_path)?;
        let mc = McQueueConfig {
            service_occupancy: get_u64(
                m.take("service_occupancy")?,
                &format!("{mc_path}.service_occupancy"),
            )?,
            arbiter: get_token::<ArbiterKind>(m.take("arbiter")?, &format!("{mc_path}.arbiter"))?,
        };
        m.finish()?;
        Some(mc)
    };
    f.finish()?;
    Ok(Topology { bus, mc })
}

fn dram_to_json(d: &DramConfig) -> Json {
    Json::obj(vec![
        ("banks", Json::U64(u64::from(d.banks))),
        ("row_bytes", Json::U64(d.row_bytes)),
        ("t_rcd", Json::U64(d.t_rcd)),
        ("t_rp", Json::U64(d.t_rp)),
        ("t_cl", Json::U64(d.t_cl)),
        ("burst", Json::U64(d.burst)),
        ("controller_overhead", Json::U64(d.controller_overhead)),
    ])
}

fn dram_from_json(v: &Json, path: &str) -> Result<DramConfig, SpecError> {
    let mut f = Fields::new(v, path)?;
    let d = DramConfig {
        banks: get_u32(f.take("banks")?, &format!("{path}.banks"))?,
        row_bytes: get_u64(f.take("row_bytes")?, &format!("{path}.row_bytes"))?,
        t_rcd: get_u64(f.take("t_rcd")?, &format!("{path}.t_rcd"))?,
        t_rp: get_u64(f.take("t_rp")?, &format!("{path}.t_rp"))?,
        t_cl: get_u64(f.take("t_cl")?, &format!("{path}.t_cl"))?,
        burst: get_u64(f.take("burst")?, &format!("{path}.burst"))?,
        controller_overhead: get_u64(
            f.take("controller_overhead")?,
            &format!("{path}.controller_overhead"),
        )?,
    };
    f.finish()?;
    Ok(d)
}

// ---------------------------------------------------------------------
// KernelSpec ⇄ Json
// ---------------------------------------------------------------------

fn kernel_to_json(k: &KernelSpec) -> Json {
    let mut pairs = vec![("kind", Json::str(k.kind()))];
    match *k {
        KernelSpec::Rsk { access } => pairs.push(("access", Json::str(access.to_string()))),
        KernelSpec::RskNop { access, nops, iterations } => {
            pairs.push(("access", Json::str(access.to_string())));
            pairs.push(("nops", Json::U64(nops)));
            pairs.push(("iterations", Json::U64(iterations)));
        }
        KernelSpec::Nop { iterations } => pairs.push(("iterations", Json::U64(iterations))),
        KernelSpec::Eembc { kernel, seed, iterations } => {
            pairs.push(("kernel", Json::str(kernel.to_string())));
            pairs.push(("seed", Json::U64(seed)));
            pairs.push(("iterations", Json::option(iterations, Json::U64)));
        }
        KernelSpec::PointerChase { lines, seed } => {
            pairs.push(("lines", Json::U64(lines)));
            pairs.push(("seed", Json::U64(seed)));
        }
        KernelSpec::Mixed { iterations } => {
            pairs.push(("iterations", Json::option(iterations, Json::U64)));
        }
        KernelSpec::Capacity { access, factor } => {
            pairs.push(("access", Json::str(access.to_string())));
            pairs.push(("factor", Json::U64(factor)));
        }
        KernelSpec::L2Miss => {}
    }
    Json::obj(pairs)
}

fn opt_u64(v: &Json, path: &str) -> Result<Option<u64>, SpecError> {
    if v.is_null() {
        Ok(None)
    } else {
        get_u64(v, path).map(Some)
    }
}

fn kernel_from_json(v: &Json, path: &str) -> Result<KernelSpec, SpecError> {
    let mut f = Fields::new(v, path)?;
    let kind = get_str(f.take("kind")?, &format!("{path}.kind"))?.to_string();
    let k = match kind.as_str() {
        "rsk" => KernelSpec::Rsk {
            access: get_token::<AccessKind>(f.take("access")?, &format!("{path}.access"))?,
        },
        "rsk-nop" => KernelSpec::RskNop {
            access: get_token::<AccessKind>(f.take("access")?, &format!("{path}.access"))?,
            nops: get_u64(f.take("nops")?, &format!("{path}.nops"))?,
            iterations: get_u64(f.take("iterations")?, &format!("{path}.iterations"))?,
        },
        "nop" => KernelSpec::Nop {
            iterations: get_u64(f.take("iterations")?, &format!("{path}.iterations"))?,
        },
        "eembc" => KernelSpec::Eembc {
            kernel: get_token::<AutobenchKernel>(f.take("kernel")?, &format!("{path}.kernel"))?,
            seed: get_u64(f.take("seed")?, &format!("{path}.seed"))?,
            iterations: opt_u64(f.take("iterations")?, &format!("{path}.iterations"))?,
        },
        "pointer-chase" => KernelSpec::PointerChase {
            lines: get_u64(f.take("lines")?, &format!("{path}.lines"))?,
            seed: get_u64(f.take("seed")?, &format!("{path}.seed"))?,
        },
        "mixed" => KernelSpec::Mixed {
            iterations: opt_u64(f.take("iterations")?, &format!("{path}.iterations"))?,
        },
        "capacity" => KernelSpec::Capacity {
            access: get_token::<AccessKind>(f.take("access")?, &format!("{path}.access"))?,
            factor: get_u64(f.take("factor")?, &format!("{path}.factor"))?,
        },
        "l2-miss" => KernelSpec::L2Miss,
        other => {
            return Err(SpecError::field(
                format!("{path}.kind"),
                format!(
                    "unknown kernel kind `{other}` (expected one of: rsk, rsk-nop, nop, \
                     eembc, pointer-chase, mixed, capacity, l2-miss)"
                ),
            ))
        }
    };
    f.finish()?;
    Ok(k)
}

// ---------------------------------------------------------------------
// Methodology ⇄ Json
// ---------------------------------------------------------------------

fn methodology_to_json(m: &MethodologyConfig) -> Json {
    Json::obj(vec![
        ("access", Json::str(m.access.to_string())),
        ("contender_access", Json::str(m.contender_access.to_string())),
        ("max_k", Json::U64(m.max_k as u64)),
        ("iterations", Json::U64(m.iterations)),
        ("calibration_iterations", Json::U64(m.calibration_iterations)),
        ("tolerance", Json::U64(m.tolerance)),
        ("min_bus_utilization", Json::F64(m.min_bus_utilization)),
    ])
}

fn methodology_from_json(v: &Json, path: &str) -> Result<MethodologyConfig, SpecError> {
    let mut f = Fields::new(v, path)?;
    let m = MethodologyConfig {
        access: get_token::<AccessKind>(f.take("access")?, &format!("{path}.access"))?,
        contender_access: get_token::<AccessKind>(
            f.take("contender_access")?,
            &format!("{path}.contender_access"),
        )?,
        max_k: get_usize(f.take("max_k")?, &format!("{path}.max_k"))?,
        iterations: get_u64(f.take("iterations")?, &format!("{path}.iterations"))?,
        calibration_iterations: get_u64(
            f.take("calibration_iterations")?,
            &format!("{path}.calibration_iterations"),
        )?,
        tolerance: get_u64(f.take("tolerance")?, &format!("{path}.tolerance"))?,
        min_bus_utilization: get_f64(
            f.take("min_bus_utilization")?,
            &format!("{path}.min_bus_utilization"),
        )?,
    };
    f.finish()?;
    Ok(m)
}

// ---------------------------------------------------------------------
// Grid and workload sections
// ---------------------------------------------------------------------

/// The grid section of an [`ExperimentSpec`]: the scenario kind plus
/// every sweep axis of a [`CampaignGrid`], minus the base machine
/// (which lives in the spec's machine section).
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Which scenario each grid cell instantiates.
    pub scenario: GridScenario,
    /// Arbitration policies to sweep.
    pub arbiters: Vec<ArbiterKind>,
    /// Core counts to sweep.
    pub cores: Vec<usize>,
    /// Scua access kinds to sweep.
    pub accesses: Vec<AccessKind>,
    /// Contender access kinds to sweep.
    pub contender_accesses: Vec<AccessKind>,
    /// Per-run iteration counts to sweep.
    pub iterations: Vec<u64>,
    /// In-cell nop-padding ceiling.
    pub max_k: usize,
    /// Methodology template for `derive` cells.
    pub methodology: MethodologyConfig,
}

impl GridSpec {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("scenario", Json::str(self.scenario.to_string())),
            (
                "arbiters",
                Json::Arr(self.arbiters.iter().map(|a| Json::str(a.to_string())).collect()),
            ),
            ("cores", Json::u64_array(&self.cores.iter().map(|&c| c as u64).collect::<Vec<_>>())),
            (
                "accesses",
                Json::Arr(self.accesses.iter().map(|a| Json::str(a.to_string())).collect()),
            ),
            (
                "contender_accesses",
                Json::Arr(
                    self.contender_accesses.iter().map(|a| Json::str(a.to_string())).collect(),
                ),
            ),
            ("iterations", Json::u64_array(&self.iterations)),
            ("max_k", Json::U64(self.max_k as u64)),
            ("methodology", methodology_to_json(&self.methodology)),
        ])
    }

    fn from_json(v: &Json, path: &str) -> Result<Self, SpecError> {
        let mut f = Fields::new(v, path)?;
        let g = GridSpec {
            scenario: get_token::<GridScenario>(f.take("scenario")?, &format!("{path}.scenario"))?,
            arbiters: token_list(f.take("arbiters")?, &format!("{path}.arbiters"))?,
            cores: usize_list(f.take("cores")?, &format!("{path}.cores"))?,
            accesses: token_list(f.take("accesses")?, &format!("{path}.accesses"))?,
            contender_accesses: token_list(
                f.take("contender_accesses")?,
                &format!("{path}.contender_accesses"),
            )?,
            iterations: u64_list(f.take("iterations")?, &format!("{path}.iterations"))?,
            max_k: get_usize(f.take("max_k")?, &format!("{path}.max_k"))?,
            methodology: methodology_from_json(
                f.take("methodology")?,
                &format!("{path}.methodology"),
            )?,
        };
        f.finish()?;
        Ok(g)
    }
}

/// One explicit workload case: a finite scua kernel observed against
/// declarative contender kernels on the spec's machine.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadCase {
    /// Case name (the scenario name in campaign records).
    pub name: String,
    /// The observed kernel, on core 0. Must be finite.
    pub scua: KernelSpec,
    /// Contender kernels for cores `1..=contenders.len()`.
    pub contenders: Vec<KernelSpec>,
}

impl WorkloadCase {
    /// The workload preconditions shared by up-front spec validation and
    /// plan-time scenario checks (one definition, so the two can never
    /// drift): the scua must be finite, the contenders must fit the
    /// machine's non-scua cores, and every kernel must satisfy its
    /// machine-dependent preconditions.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    pub fn check(&self, machine: &MachineConfig) -> Result<(), String> {
        if !self.scua.is_finite() {
            return Err(format!(
                "scua kernel `{}` never terminates, so it has no execution time",
                self.scua
            ));
        }
        let non_scua_cores = machine.num_cores.saturating_sub(1);
        if self.contenders.len() > non_scua_cores {
            return Err(format!(
                "{} contender kernel(s) but the machine has only {non_scua_cores} \
                 non-scua core(s)",
                self.contenders.len(),
            ));
        }
        for kernel in std::iter::once(&self.scua).chain(&self.contenders) {
            kernel.validate(machine).map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(self.name.clone())),
            ("scua", kernel_to_json(&self.scua)),
            ("contenders", Json::Arr(self.contenders.iter().map(kernel_to_json).collect())),
        ])
    }

    fn from_json(v: &Json, path: &str) -> Result<Self, SpecError> {
        let mut f = Fields::new(v, path)?;
        let c = WorkloadCase {
            name: get_str(f.take("name")?, &format!("{path}.name"))?.to_string(),
            scua: kernel_from_json(f.take("scua")?, &format!("{path}.scua"))?,
            contenders: {
                let arr_path = format!("{path}.contenders");
                get_array(f.take("contenders")?, &arr_path)?
                    .iter()
                    .enumerate()
                    .map(|(i, item)| kernel_from_json(item, &format!("{arr_path}[{i}]")))
                    .collect::<Result<Vec<_>, _>>()?
            },
        };
        f.finish()?;
        Ok(c)
    }
}

// ---------------------------------------------------------------------
// WorkloadScenario
// ---------------------------------------------------------------------

/// A [`Scenario`] materialised from one [`WorkloadCase`]: an isolated
/// run of the scua plus a contended run against the case's kernels,
/// analysed into slowdown and contention metrics. This is the execution
/// path for the workload section of experiment files — kernels stay
/// declarative until [`Scenario::plan`] derives the programs.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadScenario {
    /// The platform under test.
    pub machine: MachineConfig,
    /// The declarative workload (name, scua, contenders).
    pub case: WorkloadCase,
}

impl WorkloadScenario {
    /// A scenario for `case` on `machine`.
    pub fn new(machine: MachineConfig, case: &WorkloadCase) -> Self {
        WorkloadScenario { machine, case: case.clone() }
    }
}

impl Scenario for WorkloadScenario {
    fn name(&self) -> String {
        self.case.name.clone()
    }

    fn plan(&self) -> Result<Vec<RunSpec>, ScenarioError> {
        self.machine.validate().map_err(SimError::from)?;
        self.case.check(&self.machine).map_err(ScenarioError::Analysis)?;
        Ok(vec![
            RunSpec::from_kernels("isolated", self.machine.clone(), &self.case.scua, &[]),
            RunSpec::from_kernels(
                "contended",
                self.machine.clone(),
                &self.case.scua,
                &self.case.contenders,
            ),
        ])
    }

    fn analyze(&self, outcomes: &[RunOutcome]) -> ScenarioReport {
        let measurements: Result<Vec<_>, _> =
            outcomes.iter().map(RunOutcome::measurement).collect();
        match measurements.as_deref() {
            Ok([isolated, contended]) => {
                let slowdown = contended.execution_time.saturating_sub(isolated.execution_time);
                ScenarioReport::success(
                    self.name(),
                    format!(
                        "{} vs {} contender(s): slowdown {} cycles",
                        self.case.scua,
                        self.case.contenders.len(),
                        slowdown
                    ),
                )
                .with("isolated_time", MetricValue::U64(isolated.execution_time))
                .with("contended_time", MetricValue::U64(contended.execution_time))
                .with("slowdown", MetricValue::U64(slowdown))
                .with("scua_requests", MetricValue::U64(contended.bus_requests))
                .with("max_gamma", MetricValue::U64(contended.max_gamma().unwrap_or(0)))
                .with("mode_gamma", MetricValue::U64(contended.mode_gamma().unwrap_or(0)))
                .with("bus_utilization", MetricValue::F64(contended.bus_utilization))
            }
            Ok(_) => ScenarioReport::failure(self.name(), "plan produced an unexpected run count"),
            Err(e) => ScenarioReport::failure(self.name(), e),
        }
    }
}

// ---------------------------------------------------------------------
// ExperimentSpec
// ---------------------------------------------------------------------

/// A fully declarative, serialisable description of a campaign.
///
/// See the [module docs](self) for the shape and guarantees, and
/// `examples/experiments/` for checked-in spec files.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name (documentation; not part of campaign output).
    pub name: String,
    /// The base machine every scenario starts from.
    pub machine: MachineConfig,
    /// The parameter-grid section, if any.
    pub grid: Option<GridSpec>,
    /// Explicit workload cases, run after the grid cells.
    pub workloads: Vec<WorkloadCase>,
}

impl ExperimentSpec {
    /// Captures a [`CampaignGrid`] as a spec — the exact inverse of
    /// [`ExperimentSpec::to_grid`], so flag-driven campaigns can be
    /// exported and re-run from the file with byte-identical output.
    pub fn from_grid(name: impl Into<String>, grid: &CampaignGrid) -> Self {
        ExperimentSpec {
            name: name.into(),
            machine: grid.base.clone(),
            grid: Some(GridSpec {
                scenario: grid.scenario,
                arbiters: grid.arbiters.clone(),
                cores: grid.cores.clone(),
                accesses: grid.accesses.clone(),
                contender_accesses: grid.contender_accesses.clone(),
                iterations: grid.iteration_counts.clone(),
                max_k: grid.max_k,
                methodology: grid.methodology.clone(),
            }),
            workloads: Vec::new(),
        }
    }

    /// Reassembles the [`CampaignGrid`] of the grid section, if present.
    pub fn to_grid(&self) -> Option<CampaignGrid> {
        let g = self.grid.as_ref()?;
        Some(CampaignGrid {
            scenario: g.scenario,
            base: self.machine.clone(),
            arbiters: g.arbiters.clone(),
            cores: g.cores.clone(),
            accesses: g.accesses.clone(),
            contender_accesses: g.contender_accesses.clone(),
            iteration_counts: g.iterations.clone(),
            max_k: g.max_k,
            methodology: g.methodology.clone(),
        })
    }

    /// Expands the spec into scenarios: grid cells (row-major, as
    /// [`CampaignGrid::scenarios`]) followed by one [`WorkloadScenario`]
    /// per workload case.
    pub fn scenarios(&self) -> Vec<Box<dyn Scenario + Send + Sync>> {
        let mut out: Vec<Box<dyn Scenario + Send + Sync>> =
            self.to_grid().map(|g| g.scenarios()).unwrap_or_default();
        for case in &self.workloads {
            out.push(Box::new(WorkloadScenario::new(self.machine.clone(), case)));
        }
        out
    }

    /// A campaign builder pre-loaded with every scenario of this spec,
    /// over `jobs` worker threads — the single expansion path shared by
    /// [`ExperimentSpec::to_campaign`] and callers that still need to
    /// attach a result store or other builder options.
    pub fn to_campaign_builder(&self, jobs: usize) -> crate::campaign::CampaignBuilder {
        let mut builder = Campaign::builder().jobs(jobs);
        for scenario in self.scenarios() {
            builder = builder.boxed(scenario);
        }
        builder
    }

    /// Builds the runnable campaign over `jobs` worker threads. The
    /// output is byte-identical for every `jobs` value.
    pub fn to_campaign(&self, jobs: usize) -> Campaign {
        self.to_campaign_builder(jobs).build()
    }

    /// Checks that the spec describes a runnable experiment: the machine
    /// validates, workload scuas are finite, and workload kernels satisfy
    /// their machine-dependent preconditions. Grid cells validate
    /// per-cell at plan time (a bad cell becomes an error record, not a
    /// dead campaign).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] describing the first problem.
    pub fn validate(&self) -> Result<(), SpecError> {
        self.machine.validate().map_err(|e| SpecError::Invalid(format!("machine: {e}")))?;
        if self.grid.is_none() && self.workloads.is_empty() {
            return Err(SpecError::Invalid(String::from(
                "the spec has neither a grid section nor workload cases, so there is \
                 nothing to run",
            )));
        }
        for case in &self.workloads {
            case.check(&self.machine)
                .map_err(|msg| SpecError::Invalid(format!("workload `{}`: {msg}", case.name)))?;
        }
        Ok(())
    }

    /// The spec as a JSON value (deterministic key order).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("version", Json::U64(SPEC_VERSION)),
            ("name", Json::str(self.name.clone())),
            ("machine", MachineSpec(self.machine.clone()).to_json()),
            ("grid", Json::option(self.grid.as_ref(), GridSpec::to_json)),
            ("workloads", Json::Arr(self.workloads.iter().map(WorkloadCase::to_json).collect())),
        ])
    }

    /// The spec as pretty-printed JSON text — the on-disk file format.
    /// Deterministic: equal specs render byte-identically.
    pub fn to_text(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Reconstructs a spec from its JSON value.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Field`] naming the offending field path.
    pub fn from_json(v: &Json) -> Result<Self, SpecError> {
        let mut f = Fields::new(v, "")?;
        let version = get_u64(f.take("version")?, ".version")?;
        if version != SPEC_VERSION {
            return Err(SpecError::field(
                ".version",
                format!("unsupported spec version {version} (this build reads {SPEC_VERSION})"),
            ));
        }
        let spec = ExperimentSpec {
            name: get_str(f.take("name")?, ".name")?.to_string(),
            machine: MachineSpec::from_json(f.take("machine")?, ".machine")?.0,
            grid: {
                let grid_value = f.take("grid")?;
                if grid_value.is_null() {
                    None
                } else {
                    Some(GridSpec::from_json(grid_value, ".grid")?)
                }
            },
            workloads: {
                let arr = get_array(f.take("workloads")?, ".workloads")?;
                arr.iter()
                    .enumerate()
                    .map(|(i, item)| WorkloadCase::from_json(item, &format!(".workloads[{i}]")))
                    .collect::<Result<Vec<_>, _>>()?
            },
        };
        f.finish()?;
        Ok(spec)
    }

    /// Parses a spec from JSON text (the inverse of
    /// [`ExperimentSpec::to_text`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] for malformed JSON or
    /// [`SpecError::Field`] for schema violations.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Reads, parses, **and validates** an experiment file — the one
    /// loading path every consumer (CLI, examples, bench bins) shares,
    /// so no call site can forget the validation step.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::File`] naming the path on read failures, and
    /// the parse/validation errors of [`ExperimentSpec::parse`] and
    /// [`ExperimentSpec::validate`] otherwise.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<Self, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| SpecError::File {
            path: path.display().to_string(),
            error: e.to_string(),
        })?;
        let spec = Self::parse(&text)?;
        spec.validate()?;
        Ok(spec)
    }

    /// A stable 64-bit FNV-1a digest of the canonical (compact) spec
    /// rendering. Equal specs hash equally on every platform, so the
    /// hash can key caches of campaign outputs.
    pub fn spec_hash(&self) -> u64 {
        fnv1a_64(self.to_json().render_compact().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::GridScenario;

    fn toy_spec() -> ExperimentSpec {
        let grid = CampaignGrid::new(GridScenario::Derive, MachineConfig::toy(4, 2))
            .arbiters(vec![ArbiterKind::RoundRobin, ArbiterKind::Tdma { slot_cycles: 4 }])
            .iterations(vec![60, 80]);
        let mut spec = ExperimentSpec::from_grid("toy", &grid);
        spec.workloads.push(WorkloadCase {
            name: String::from("pntrch-vs-rsk"),
            scua: KernelSpec::Eembc {
                kernel: AutobenchKernel::Pntrch,
                seed: 7,
                iterations: Some(30),
            },
            contenders: vec![
                KernelSpec::Rsk { access: AccessKind::Load },
                KernelSpec::Mixed { iterations: None },
            ],
        });
        spec
    }

    #[test]
    fn spec_round_trips_through_text() {
        let spec = toy_spec();
        let text = spec.to_text();
        let back = ExperimentSpec::parse(&text).expect("parse");
        assert_eq!(back, spec);
        assert_eq!(back.to_text(), text, "rendering is deterministic");
        assert_eq!(back.spec_hash(), spec.spec_hash());
    }

    #[test]
    fn machine_spec_round_trips_every_preset() {
        for cfg in [
            MachineConfig::ngmp_ref(),
            MachineConfig::ngmp_var(),
            MachineConfig::ngmp_two_level(),
            MachineConfig::toy(3, 5),
        ] {
            let json = MachineSpec(cfg.clone()).to_json();
            let back = MachineSpec::from_json(&json, "machine").expect("round trip");
            assert_eq!(back.0, cfg);
        }
    }

    #[test]
    fn grid_and_spec_convert_losslessly() {
        let grid = CampaignGrid::new(GridScenario::Sweep, MachineConfig::ngmp_two_level())
            .cores(vec![2, 4])
            .accesses(vec![AccessKind::Load, AccessKind::Store]);
        let spec = ExperimentSpec::from_grid("x", &grid);
        assert_eq!(spec.to_grid().expect("grid"), grid);
    }

    #[test]
    fn spec_campaign_matches_flag_style_campaign() {
        let grid = CampaignGrid::new(GridScenario::Naive, MachineConfig::toy(4, 2))
            .contender_accesses(vec![AccessKind::Load, AccessKind::Store]);
        let direct = Campaign::builder().grid(&grid).build().run();
        let spec = ExperimentSpec::from_grid("x", &grid);
        let reparsed = ExperimentSpec::parse(&spec.to_text()).expect("parse");
        let via_spec = reparsed.to_campaign(2).run();
        assert_eq!(via_spec.to_json(), direct.to_json());
        assert_eq!(via_spec.to_csv(), direct.to_csv());
    }

    #[test]
    fn workload_scenario_measures_a_slowdown() {
        let mut spec = toy_spec();
        spec.grid = None;
        spec.validate().expect("valid");
        let result = spec.to_campaign(1).run();
        assert_eq!(result.reports.len(), 1);
        let report = &result.reports[0];
        assert!(report.is_ok(), "{report:?}");
        assert_eq!(report.scenario, "pntrch-vs-rsk");
        let isolated = report.metric_u64("isolated_time").expect("isolated_time");
        let contended = report.metric_u64("contended_time").expect("contended_time");
        assert!(contended > isolated);
        assert_eq!(
            report.metric_u64("slowdown"),
            Some(contended - isolated),
            "slowdown is the difference"
        );
    }

    #[test]
    fn endless_scua_and_overfull_workloads_fail_validation() {
        let mut spec = toy_spec();
        spec.workloads[0].scua = KernelSpec::Rsk { access: AccessKind::Load };
        let e = spec.validate().expect_err("endless scua");
        assert!(e.to_string().contains("never terminates"), "{e}");

        let mut spec = toy_spec();
        spec.workloads[0].contenders = vec![KernelSpec::Rsk { access: AccessKind::Load }; 9];
        let e = spec.validate().expect_err("too many contenders");
        assert!(e.to_string().contains("non-scua"), "{e}");

        let mut spec = toy_spec();
        spec.workloads[0].contenders =
            vec![KernelSpec::Capacity { access: AccessKind::Load, factor: 1 }];
        let e = spec.validate().expect_err("bad capacity");
        assert!(e.to_string().contains("at least 2"), "{e}");

        let mut spec = toy_spec();
        spec.grid = None;
        spec.workloads.clear();
        let e = spec.validate().expect_err("empty spec");
        assert!(e.to_string().contains("nothing to run"), "{e}");
    }

    #[test]
    fn bad_workload_plans_become_error_records_not_panics() {
        // The same problems, arriving via the campaign path: contained.
        let mut spec = toy_spec();
        spec.grid = None;
        spec.workloads[0].scua = KernelSpec::Rsk { access: AccessKind::Load };
        let result = spec.to_campaign(1).run();
        assert_eq!(result.stats.failed_runs, 1);
        assert!(!result.reports[0].is_ok());
    }

    #[test]
    fn unknown_and_missing_fields_are_named_errors() {
        let spec = toy_spec();
        let text = spec.to_text();
        let e = ExperimentSpec::parse(&text.replace("\"num_cores\"", "\"num_crores\""))
            .expect_err("must fail");
        let msg = e.to_string();
        assert!(msg.contains("machine.num_c"), "{msg}");
        let e = ExperimentSpec::parse(&text.replace("\"version\": 1", "\"version\": 9"))
            .expect_err("must fail");
        assert!(e.to_string().contains("unsupported spec version 9"), "{e}");
        let e = ExperimentSpec::parse(&text.replace("\"arbiter\": \"rr\"", "\"arbiter\": \"xx\""))
            .expect_err("must fail");
        assert!(e.to_string().contains("tdma:<slot>"), "{e}");
        let e = ExperimentSpec::parse("{ not json").expect_err("must fail");
        assert!(matches!(e, SpecError::Parse(_)));
    }

    #[test]
    fn spec_hash_tracks_content() {
        let a = toy_spec();
        let mut b = toy_spec();
        assert_eq!(a.spec_hash(), b.spec_hash());
        b.machine.num_cores = 3;
        assert_ne!(a.spec_hash(), b.spec_hash());
    }
}
