//! The paper's rsk-nop methodology (§4): derive `ubd` from measurements
//! alone, with no knowledge of bus or L2 latencies.
//!
//! The procedure, exactly as §4.2–§4.3 prescribe:
//!
//! 1. **Calibrate `δ_nop`** by timing a loop of pure nops in isolation.
//! 2. For `k = 0, 1, 2, …, max_k`: run `rsk-nop(t, k)` as the scua
//!    against `Nc − 1` plain `rsk(t)` contenders, and record the slowdown
//!    `d_bus(t, k) = ExecTime_contended(k) − ExecTime_isolated(k)`.
//! 3. **Detect the saw-tooth period** of `d_bus(t, k)` (Eq. 3); the
//!    period in injection-time space *is* `ubd`.
//! 4. **Check confidence**: the contenders must have saturated the bus
//!    (verified via the utilisation counters, §4.3), and the calibrated
//!    `δ_nop` resolves the sampling ambiguity when nops cost more than
//!    one cycle.
//!
//! The whole procedure is packaged as [`UbdScenario`], a
//! [`Scenario`]: the measurement plan
//! (calibration + one isolated/contended pair per `k`) is pure data, so
//! a [`Campaign`](crate::campaign::Campaign) can run many derivations in
//! parallel and deduplicate shared runs. [`derive_ubd`] is the
//! single-scenario convenience wrapper over the same code path.

use crate::campaign::{RunError, RunSpec};
use crate::executor::Executor;
use crate::scenario::{MetricValue, RunOutcome, Scenario, ScenarioError, ScenarioReport};
use rrb_analysis::sawtooth::{detect_period, ubd_candidates, PeriodEstimate};
use rrb_kernels::{estimate_delta_nop, nop_kernel, AccessKind, KernelSpec};
use rrb_sim::{MachineConfig, ResourceKind, SimError};
use std::error::Error;
use std::fmt;

/// Tuning knobs of the methodology. The defaults mirror the paper's
/// experimental practice; [`MethodologyConfig::fast`] is a cheaper preset
/// for unit tests and examples.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodologyConfig {
    /// Access type `t` of the `rsk-nop(t, k)` scua.
    pub access: AccessKind,
    /// Access type of the contender rsk. Loads are the paper's default;
    /// store contenders inject with zero gap once their buffer fills and
    /// can saturate a bus that `Nc - 1` load kernels cannot (e.g. on a
    /// 2-core machine, where a single load contender leaves idle cycles).
    pub contender_access: AccessKind,
    /// Largest nop count swept. Must cover at least two saw-tooth
    /// periods; 2.5–3× the suspected `ubd` is a safe choice (the paper
    /// sweeps to ~80 on a 27-cycle bus).
    pub max_k: usize,
    /// Iterations of the rsk-nop body per run.
    pub iterations: u64,
    /// Iterations of the δ_nop calibration loop.
    pub calibration_iterations: u64,
    /// Tolerance (cycles) for the period matcher, absorbing cold-start
    /// jitter. Zero forces exact Eq. 3 matching.
    pub tolerance: u64,
    /// Minimum bus utilisation the contended runs must reach for the
    /// result to be trusted (§4.3's first confidence element).
    pub min_bus_utilization: f64,
}

impl MethodologyConfig {
    /// Paper-scale defaults: load kernels, `k` swept to 80, 500
    /// iterations per run.
    pub fn paper() -> Self {
        MethodologyConfig {
            access: AccessKind::Load,
            contender_access: AccessKind::Load,
            max_k: 80,
            iterations: 500,
            calibration_iterations: 50,
            tolerance: 0,
            min_bus_utilization: 0.95,
        }
    }

    /// A cheap preset for small buses (toy configurations, unit tests):
    /// `k` to 20, 100 iterations.
    pub fn fast() -> Self {
        MethodologyConfig {
            access: AccessKind::Load,
            contender_access: AccessKind::Load,
            max_k: 20,
            iterations: 100,
            calibration_iterations: 10,
            tolerance: 0,
            min_bus_utilization: 0.9,
        }
    }
}

impl Default for MethodologyConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// One resource's share of a derived bound.
///
/// The bus share is the saw-tooth-derived `ubd_m` (rsk kernels hit in L2
/// at steady state, so the periodic slowdown measures the bus alone);
/// the memory-controller share is read off that resource's own γ
/// counters (the largest admission delay observed across the contended
/// runs). The shares sum to [`UbdDerivation::total_ubd_m`] by
/// construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceContribution {
    /// Stable resource name (`"bus"`, `"mc"`).
    pub resource: String,
    /// The resource's share of the derived bound, in cycles.
    pub ubd_m: u64,
}

/// A successful `ubd` derivation, with everything needed to audit it.
#[derive(Debug, Clone, PartialEq)]
pub struct UbdDerivation {
    /// The derived upper-bound delay of the **bus** (in cycles) — the
    /// saw-tooth period of the rsk-nop sweep.
    pub ubd_m: u64,
    /// Per-resource shares of the derived bound, in request-path order;
    /// a single entry on single-bus topologies.
    pub resource_contributions: Vec<ResourceContribution>,
    /// The calibrated nop latency.
    pub delta_nop: u64,
    /// The detected period of the slowdown series, in k steps.
    pub k_period: u64,
    /// How the period was matched.
    pub period_estimate: PeriodEstimate,
    /// Every `ubd` consistent with the observed period and `δ_nop`
    /// before disambiguation.
    pub candidates: Vec<u64>,
    /// The measured slowdown series `d_bus(t, k)` for `k = 0..=max_k`.
    pub slowdowns: Vec<u64>,
    /// The largest per-request contention observed anywhere in the sweep
    /// (used to discard candidates `<= γ_max`).
    pub max_observed_gamma: u64,
    /// The lowest bus utilisation seen across the contended runs.
    pub min_bus_utilization: f64,
    /// Bus requests per run (`nr`), for ETB padding.
    pub scua_requests: u64,
}

impl UbdDerivation {
    /// The derived bound summed over every resource on the request path.
    /// Equal to [`UbdDerivation::ubd_m`] on single-bus topologies; on
    /// two-level topologies it adds the measured memory-controller share.
    pub fn total_ubd_m(&self) -> u64 {
        self.resource_contributions.iter().map(|c| c.ubd_m).sum()
    }
}

/// Why a derivation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodologyError {
    /// A measurement run failed.
    Run(RunError),
    /// The contenders never saturated the bus, so the synchrony effect
    /// cannot be relied on (§4.3).
    LowBusUtilization {
        /// The worst utilisation observed.
        observed: f64,
        /// The configured floor.
        required: f64,
    },
    /// The slowdown series shows no saw-tooth — the arbiter is probably
    /// not round-robin, or the sweep is too short.
    NoPeriod {
        /// The measured series, for diagnosis.
        slowdowns: Vec<u64>,
    },
    /// The period and `δ_nop` admit no `ubd` above the observed maximum
    /// contention (inconsistent measurements).
    NoConsistentCandidate {
        /// Candidates implied by the period.
        candidates: Vec<u64>,
        /// The observed maximum γ they must exceed.
        max_observed_gamma: u64,
    },
}

impl fmt::Display for MethodologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodologyError::Run(e) => write!(f, "{e}"),
            MethodologyError::LowBusUtilization { observed, required } => write!(
                f,
                "bus utilisation {observed:.3} below the {required:.3} required for synchrony"
            ),
            MethodologyError::NoPeriod { .. } => {
                write!(f, "slowdown series has no saw-tooth period (is the bus round-robin?)")
            }
            MethodologyError::NoConsistentCandidate { candidates, max_observed_gamma } => write!(
                f,
                "no ubd candidate in {candidates:?} exceeds the observed contention {max_observed_gamma}"
            ),
        }
    }
}

impl Error for MethodologyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MethodologyError::Run(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RunError> for MethodologyError {
    fn from(e: RunError) -> Self {
        MethodologyError::Run(e)
    }
}

impl From<SimError> for MethodologyError {
    fn from(e: SimError) -> Self {
        MethodologyError::Run(RunError::Sim(e))
    }
}

impl From<ScenarioError> for MethodologyError {
    fn from(e: ScenarioError) -> Self {
        match e {
            ScenarioError::Config(e) => MethodologyError::Run(RunError::Sim(e)),
            ScenarioError::Analysis(msg) => MethodologyError::Run(RunError::Analysis(msg)),
        }
    }
}

/// Step 1: calibrate `δ_nop` on the target machine (§4.2).
///
/// # Errors
///
/// Returns [`MethodologyError::Run`] if the calibration run fails.
pub fn calibrate_delta_nop(cfg: &MachineConfig, iterations: u64) -> Result<u64, MethodologyError> {
    let kernel = nop_kernel(cfg, iterations);
    let nops = kernel.dynamic_instruction_count().expect("calibration kernel is finite");
    let run = crate::experiment::run_isolated(cfg, kernel)?;
    Ok(estimate_delta_nop(run.execution_time, nops))
}

/// The full rsk-nop methodology as a campaign-ready
/// [`Scenario`].
///
/// The plan is: one calibration run, then an isolated/contended pair per
/// `k ∈ 0..=max_k`. [`UbdScenario::derivation`] reduces the outcomes to a
/// [`UbdDerivation`] — the same algebra [`derive_ubd`] has always
/// applied, now decoupled from execution so campaigns can parallelise
/// and deduplicate the runs.
#[derive(Debug, Clone, PartialEq)]
pub struct UbdScenario {
    /// Scenario name (campaign record key).
    pub name: String,
    /// The platform under test.
    pub machine: MachineConfig,
    /// Methodology tuning knobs.
    pub methodology: MethodologyConfig,
}

impl UbdScenario {
    /// A scenario with the default name `"derive-ubd"`.
    pub fn new(machine: MachineConfig, methodology: MethodologyConfig) -> Self {
        UbdScenario { name: String::from("derive-ubd"), machine, methodology }
    }

    /// Renames the scenario (builder style).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Reduces the outcomes of [`Scenario::plan`] to a derivation.
    ///
    /// # Errors
    ///
    /// See [`MethodologyError`] for the failure modes.
    pub fn derivation(&self, outcomes: &[RunOutcome]) -> Result<UbdDerivation, MethodologyError> {
        let mcfg = &self.methodology;
        let expected = 1 + 2 * (mcfg.max_k + 1);
        assert_eq!(outcomes.len(), expected, "outcome count must match the plan");

        // Step 1: δ_nop calibration.
        let calibration = outcomes[0].measurement()?;
        let nops = nop_kernel(&self.machine, mcfg.calibration_iterations)
            .dynamic_instruction_count()
            .expect("calibration kernel is finite");
        let delta_nop = estimate_delta_nop(calibration.execution_time, nops);

        // Step 2: the k sweep.
        let mut slowdowns = Vec::with_capacity(mcfg.max_k + 1);
        let mut max_gamma = 0u64;
        let mut max_mc_gamma = 0u64;
        let mut min_util = 1.0f64;
        let mut scua_requests = 0u64;
        for pair in outcomes[1..].chunks(2) {
            let isolated = pair[0].measurement()?;
            let contended = pair[1].measurement()?;
            slowdowns.push(contended.execution_time.saturating_sub(isolated.execution_time));
            max_gamma = max_gamma.max(contended.max_gamma().unwrap_or(0));
            max_mc_gamma = max_mc_gamma.max(contended.max_gamma_mc().unwrap_or(0));
            min_util = min_util.min(contended.bus_utilization);
            scua_requests = isolated.bus_requests;
        }

        // Step 4a (checked early): contenders must saturate the bus.
        if min_util < mcfg.min_bus_utilization {
            return Err(MethodologyError::LowBusUtilization {
                observed: min_util,
                required: mcfg.min_bus_utilization,
            });
        }

        // Step 3: saw-tooth period.
        let tolerance = if mcfg.tolerance > 0 {
            mcfg.tolerance
        } else {
            // Auto-tolerance: 1 % of the series swing, at least 2 cycles,
            // absorbing cold-start transients without hiding the tooth.
            let max = slowdowns.iter().max().copied().unwrap_or(0);
            let min = slowdowns.iter().min().copied().unwrap_or(0);
            ((max - min) / 100).max(2)
        };
        let estimate =
            match detect_period(&slowdowns, 0).or_else(|| detect_period(&slowdowns, tolerance)) {
                Some(e) => e,
                None => return Err(MethodologyError::NoPeriod { slowdowns }),
            };

        // Step 4b: resolve δ_nop sampling. A candidate must be able to
        // explain every observed delay; γ = ubd itself is reachable (δ = 0
        // refills and store drains), so the comparison is inclusive.
        let candidates = ubd_candidates(estimate.period, delta_nop);
        let ubd_m = match candidates.iter().copied().find(|&c| c >= max_gamma) {
            Some(u) => u,
            None => {
                return Err(MethodologyError::NoConsistentCandidate {
                    candidates,
                    max_observed_gamma: max_gamma,
                })
            }
        };

        // The per-resource split of the bound: the saw-tooth measures the
        // bus; any further resource on the topology contributes the worst
        // admission delay its own γ counters recorded.
        let mut resource_contributions =
            vec![ResourceContribution { resource: ResourceKind::Bus.to_string(), ubd_m }];
        if self.machine.topology.mc.is_some() {
            resource_contributions.push(ResourceContribution {
                resource: ResourceKind::MemoryController.to_string(),
                ubd_m: max_mc_gamma,
            });
        }

        Ok(UbdDerivation {
            ubd_m,
            resource_contributions,
            delta_nop,
            k_period: estimate.period,
            period_estimate: estimate,
            candidates,
            slowdowns,
            max_observed_gamma: max_gamma,
            min_bus_utilization: min_util,
            scua_requests,
        })
    }
}

impl Scenario for UbdScenario {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn plan(&self) -> Result<Vec<RunSpec>, ScenarioError> {
        self.machine.validate().map_err(SimError::from)?;
        let mcfg = &self.methodology;
        // The whole plan is declarative: each run is a KernelSpec per
        // core, and the programs are derived from the specs.
        let contenders = vec![
            KernelSpec::Rsk { access: mcfg.contender_access };
            self.machine.num_cores.saturating_sub(1)
        ];
        let mut specs = Vec::with_capacity(1 + 2 * (mcfg.max_k + 1));
        specs.push(RunSpec::from_kernels(
            "calibration",
            self.machine.clone(),
            &KernelSpec::Nop { iterations: mcfg.calibration_iterations },
            &[],
        ));
        for k in 0..=mcfg.max_k {
            let scua = KernelSpec::RskNop {
                access: mcfg.access,
                nops: k as u64,
                iterations: mcfg.iterations,
            };
            specs.push(RunSpec::from_kernels(
                format!("k={k}/isolated"),
                self.machine.clone(),
                &scua,
                &[],
            ));
            specs.push(RunSpec::from_kernels(
                format!("k={k}/contended"),
                self.machine.clone(),
                &scua,
                &contenders,
            ));
        }
        Ok(specs)
    }

    fn analyze(&self, outcomes: &[RunOutcome]) -> ScenarioReport {
        match self.derivation(outcomes) {
            Ok(d) => {
                let mut report = ScenarioReport::success(
                    self.name(),
                    format!(
                        "ubd_m = {} (period {}, delta_nop {})",
                        d.ubd_m, d.k_period, d.delta_nop
                    ),
                );
                for c in &d.resource_contributions {
                    report = report.with(format!("ubd_{}", c.resource), MetricValue::U64(c.ubd_m));
                }
                report
                    .with("ubd_total", MetricValue::U64(d.total_ubd_m()))
                    .with("ubd_m", MetricValue::U64(d.ubd_m))
                    .with("delta_nop", MetricValue::U64(d.delta_nop))
                    .with("k_period", MetricValue::U64(d.k_period))
                    .with("period_method", MetricValue::Text(d.period_estimate.method.to_string()))
                    .with("candidates", MetricValue::Series(d.candidates.clone()))
                    .with("max_observed_gamma", MetricValue::U64(d.max_observed_gamma))
                    .with("min_bus_utilization", MetricValue::F64(d.min_bus_utilization))
                    .with("scua_requests", MetricValue::U64(d.scua_requests))
                    .with("slowdowns", MetricValue::Series(d.slowdowns))
            }
            Err(e) => ScenarioReport::failure(self.name(), e),
        }
    }
}

/// Runs the complete methodology against machine `cfg` and returns the
/// derived `ubd_m` with its audit trail.
///
/// The machine configuration is used only to *build* the machine (the
/// platform under test); the derivation itself reads nothing but
/// execution times and the bus-utilisation counter, exactly as a COTS
/// user would.
///
/// This is the serial convenience wrapper over [`UbdScenario`]; a
/// [`Campaign`](crate::campaign::Campaign) runs the same plan in
/// parallel.
///
/// # Errors
///
/// See [`MethodologyError`] for the failure modes.
pub fn derive_ubd(
    cfg: &MachineConfig,
    mcfg: &MethodologyConfig,
) -> Result<UbdDerivation, MethodologyError> {
    let scenario = UbdScenario::new(cfg.clone(), mcfg.clone());
    let specs = scenario.plan()?;
    let results = Executor::new().execute(&specs).0;
    let outcomes: Vec<RunOutcome> = specs
        .into_iter()
        .zip(results)
        .map(|(spec, result)| RunOutcome { label: spec.label, result })
        .collect();
    scenario.derivation(&outcomes)
}

/// The store-tooth cross-check of Fig. 7(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreToothCheck {
    /// The span of the single store saw-tooth, in k steps.
    pub tooth_length: u64,
    /// The load-derived bound it is checked against.
    pub ubd_m: u64,
}

impl StoreToothCheck {
    /// Whether the tooth corroborates the bound: the paper reads the
    /// tooth length as "matching the ubd" with a small shift "caused by
    /// the number of entries in the store buffer and its processing
    /// time" — accept a window of `[ubd_m - 2, ubd_m + store margin]`.
    pub fn corroborates(&self, margin: u64) -> bool {
        self.tooth_length + 2 >= self.ubd_m && self.tooth_length <= self.ubd_m + margin
    }
}

/// The Fig. 7(b) cross-check: sweep `rsk-nop(store, k)` against load
/// contenders and read the length of the single slowdown tooth, which
/// must corroborate the load-derived `ubd_m` (§5.3).
///
/// Store slowdowns are not periodic (beyond one tooth the store buffer
/// hides the bus entirely), so this is a *consistency check* on a bound
/// derived with loads, not an independent derivation. The sweep is a
/// [`SweepScenario`](crate::scenario::SweepScenario) under the hood.
///
/// # Errors
///
/// Returns [`MethodologyError::Run`] if a run fails, or
/// [`MethodologyError::NoPeriod`] when no collapsing tooth is visible
/// (e.g. the platform has no store buffer to hide the latency).
pub fn store_tooth_check(
    cfg: &MachineConfig,
    mcfg: &MethodologyConfig,
    ubd_m: u64,
) -> Result<StoreToothCheck, MethodologyError> {
    let scenario = crate::scenario::SweepScenario::new(cfg.clone(), mcfg.max_k, mcfg.iterations)
        .access(AccessKind::Store)
        .contenders(AccessKind::Load)
        .named("store-tooth");
    let specs = scenario.plan()?;
    let results = Executor::new().execute(&specs).0;
    let outcomes: Vec<RunOutcome> = specs
        .into_iter()
        .zip(results)
        .map(|(spec, result)| RunOutcome { label: spec.label, result })
        .collect();
    let slowdowns = scenario.slowdowns(&outcomes)?;
    match rrb_analysis::first_tooth_length(&slowdowns, 0.10) {
        Some(tooth_length) => Ok(StoreToothCheck { tooth_length, ubd_m }),
        None => Err(MethodologyError::NoPeriod { slowdowns }),
    }
}

/// A derivation repeated under perturbed measurement conditions, with the
/// consensus verdict across repeats — the confidence amplifier the
/// paper's title calls for.
#[derive(Debug, Clone, PartialEq)]
pub struct RepeatedDerivation {
    /// Each repeat's full derivation.
    pub runs: Vec<UbdDerivation>,
    /// Agreement across the repeats' period estimates.
    pub consensus: rrb_analysis::Consensus,
}

impl RepeatedDerivation {
    /// The consensus `ubd_m`, if the repeats agree.
    pub fn ubd_m(&self) -> Option<u64> {
        // All runs that voted for the consensus period carry the same
        // disambiguated ubd; take it from the first matching run.
        let period = self.consensus.period()?;
        self.runs.iter().find(|r| r.k_period == period).map(|r| r.ubd_m)
    }
}

/// Runs the methodology `repeats` times, perturbing the per-run iteration
/// count (which shifts every kernel's phase relative to the contenders),
/// and aggregates the period estimates into a consensus.
///
/// A production measurement campaign would use this instead of a single
/// sweep: a lone estimate can be corrupted by an unlucky alignment, while
/// agreement across perturbed runs is strong evidence the saw-tooth is
/// real (§1's "increasing confidence"). The repeats are independent
/// [`UbdScenario`]s batched through one deduplicated, parallel
/// [`Campaign`](crate::campaign::Campaign) plan.
///
/// # Errors
///
/// Propagates the first failing run's [`MethodologyError`].
pub fn derive_ubd_repeated(
    cfg: &MachineConfig,
    mcfg: &MethodologyConfig,
    repeats: u32,
) -> Result<RepeatedDerivation, MethodologyError> {
    derive_ubd_repeated_jobs(cfg, mcfg, repeats, 1)
}

/// [`derive_ubd_repeated`] with an explicit worker-thread count.
///
/// # Errors
///
/// Propagates the first failing run's [`MethodologyError`].
pub fn derive_ubd_repeated_jobs(
    cfg: &MachineConfig,
    mcfg: &MethodologyConfig,
    repeats: u32,
    jobs: usize,
) -> Result<RepeatedDerivation, MethodologyError> {
    let scenarios: Vec<UbdScenario> = (0..repeats.max(1))
        .map(|r| {
            let mut varied = mcfg.clone();
            // Vary the measurement length; the period must not care.
            varied.iterations = mcfg.iterations + u64::from(r) * (mcfg.iterations / 4).max(1);
            UbdScenario::new(cfg.clone(), varied).named(format!("repeat-{r}"))
        })
        .collect();

    // One flat plan across all repeats, deduplicated before execution
    // (the calibration run is identical in every repeat, for instance).
    let mut specs = Vec::new();
    let mut spans = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        let plan = scenario.plan()?;
        spans.push((specs.len(), plan.len()));
        specs.extend(plan);
    }
    let results = Executor::new().jobs(jobs).dedup(true).execute(&specs).0;

    let mut runs = Vec::with_capacity(scenarios.len());
    for (scenario, &(start, len)) in scenarios.iter().zip(&spans) {
        let outcomes: Vec<RunOutcome> = specs[start..start + len]
            .iter()
            .zip(&results[start..start + len])
            .map(|(spec, result)| RunOutcome { label: spec.label.clone(), result: result.clone() })
            .collect();
        runs.push(scenario.derivation(&outcomes)?);
    }
    let estimates: Vec<_> = runs.iter().map(|r| r.period_estimate).collect();
    let consensus = rrb_analysis::period_consensus(&estimates);
    Ok(RepeatedDerivation { runs, consensus })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_ubd_on_toy_bus() {
        // ubd = (4-1)*2 = 6; the methodology must find it blind.
        let cfg = MachineConfig::toy(4, 2);
        let d = derive_ubd(&cfg, &MethodologyConfig::fast()).expect("derivation");
        assert_eq!(d.ubd_m, 6);
        assert_eq!(d.delta_nop, 1);
        assert_eq!(d.k_period, 6);
        assert!(d.min_bus_utilization > 0.9);
    }

    #[test]
    fn derives_ubd_on_toy_bus_with_three_cores() {
        let cfg = MachineConfig::toy(3, 3);
        let mut m = MethodologyConfig::fast();
        m.max_k = 16;
        let d = derive_ubd(&cfg, &m).expect("derivation");
        assert_eq!(d.ubd_m, 6);
    }

    #[test]
    fn calibration_reads_nop_latency() {
        let cfg = MachineConfig::toy(4, 2);
        assert_eq!(calibrate_delta_nop(&cfg, 5).expect("run"), 1);
        let mut slow = cfg;
        slow.nop_latency = 2;
        assert_eq!(calibrate_delta_nop(&slow, 5).expect("run"), 2);
    }

    #[test]
    fn low_utilization_is_rejected() {
        // A 2-core toy bus where the single contender cannot saturate:
        // force an impossible utilisation floor instead.
        let cfg = MachineConfig::toy(4, 2);
        let mut m = MethodologyConfig::fast();
        m.min_bus_utilization = 1.01; // unreachable on purpose
        match derive_ubd(&cfg, &m) {
            Err(MethodologyError::LowBusUtilization { .. }) => {}
            other => panic!("expected utilisation rejection, got {other:?}"),
        }
    }

    #[test]
    fn short_sweep_yields_no_period() {
        let cfg = MachineConfig::toy(4, 2);
        let mut m = MethodologyConfig::fast();
        m.max_k = 7; // less than two periods of 6
        match derive_ubd(&cfg, &m) {
            Err(MethodologyError::NoPeriod { slowdowns }) => {
                assert_eq!(slowdowns.len(), 8);
            }
            other => panic!("expected NoPeriod, got {other:?}"),
        }
    }

    #[test]
    fn store_tooth_corroborates_toy_ubd() {
        let cfg = MachineConfig::toy(4, 2);
        let mut m = MethodologyConfig::fast();
        m.max_k = 24;
        let d = derive_ubd(&cfg, &m).expect("load derivation");
        let check = store_tooth_check(&cfg, &m, d.ubd_m).expect("store sweep");
        assert!(
            check.corroborates(cfg.bus().store_occupancy + 2),
            "tooth {} vs ubd_m {}",
            check.tooth_length,
            check.ubd_m
        );
    }

    #[test]
    fn repeated_derivation_is_unanimous_on_toy_bus() {
        let cfg = MachineConfig::toy(4, 2);
        let r = derive_ubd_repeated(&cfg, &MethodologyConfig::fast(), 3).expect("runs");
        assert_eq!(r.runs.len(), 3);
        assert!(matches!(r.consensus, rrb_analysis::Consensus::Unanimous { period: 6, votes: 3 }));
        assert_eq!(r.ubd_m(), Some(6));
    }

    #[test]
    fn repeated_derivation_is_identical_across_jobs() {
        let cfg = MachineConfig::toy(4, 2);
        let mut m = MethodologyConfig::fast();
        m.max_k = 14;
        m.iterations = 60;
        let serial = derive_ubd_repeated_jobs(&cfg, &m, 2, 1).expect("serial");
        let parallel = derive_ubd_repeated_jobs(&cfg, &m, 2, 4).expect("parallel");
        assert_eq!(serial.runs, parallel.runs);
        assert_eq!(serial.consensus, parallel.consensus);
    }

    #[test]
    fn scenario_analyze_reports_ubd_metric() {
        let cfg = MachineConfig::toy(4, 2);
        let scenario = UbdScenario::new(cfg, MethodologyConfig::fast()).named("toy");
        let specs = scenario.plan().expect("plan");
        let results = Executor::new().jobs(2).execute(&specs).0;
        let outcomes: Vec<RunOutcome> = specs
            .into_iter()
            .zip(results)
            .map(|(s, result)| RunOutcome { label: s.label, result })
            .collect();
        let report = scenario.analyze(&outcomes);
        assert!(report.is_ok(), "{report:?}");
        assert_eq!(report.metric_u64("ubd_m"), Some(6));
        assert_eq!(report.metric_u64("k_period"), Some(6));
    }

    #[test]
    fn error_display_and_source() {
        let e = MethodologyError::LowBusUtilization { observed: 0.5, required: 0.95 };
        assert!(e.to_string().contains("0.500"));
        assert!(e.source().is_none());
        let e = MethodologyError::from(SimError::NoSuchCore { core: 1, num_cores: 1 });
        assert!(e.source().is_some());
    }
}
