//! The shared experiment harness: isolated and contended runs.
//!
//! Every estimator in this crate is built from the same two measurements
//! the paper uses (§1, §4.2):
//!
//! * the execution time of a program **in isolation**
//!   (`ExecTime_isol`), and
//! * its execution time **against contenders** (`ExecTime_rsk`),
//!
//! whose difference `det = ExecTime_rsk − ExecTime_isol` is the total
//! contention the bus inflicted.
//!
//! Since the `Scenario`/`Campaign` redesign these helpers are thin views
//! over the batch runner: each one builds a [`RunSpec`] and executes it
//! through the [`Executor`], the same code path the parallel
//! [`Campaign`](crate::campaign::Campaign) uses — so a measurement taken
//! here is bit-identical to the same run inside a campaign.

use crate::campaign::{RunError, RunMeasurement, RunSpec};
use crate::executor::Executor;
use rrb_analysis::Histogram;
use rrb_sim::{CoreId, MachineConfig, Program};

/// Result of running a program alone on the machine.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolatedRun {
    /// Execution time in cycles.
    pub execution_time: u64,
    /// Bus requests the program performed (`nr`).
    pub bus_requests: u64,
    /// Instructions retired.
    pub instructions: u64,
}

impl From<RunMeasurement> for IsolatedRun {
    fn from(m: RunMeasurement) -> Self {
        IsolatedRun {
            execution_time: m.execution_time,
            bus_requests: m.bus_requests,
            instructions: m.instructions,
        }
    }
}

/// Result of running a scua against contenders.
#[derive(Debug, Clone, PartialEq)]
pub struct ContendedRun {
    /// Execution time in cycles.
    pub execution_time: u64,
    /// Bus requests of the scua.
    pub bus_requests: u64,
    /// Histogram of per-request contention delays (γ) of the scua.
    pub gamma_histogram: Histogram,
    /// Histogram of ready-time contender counts of the scua (Fig. 6(a)).
    pub contender_histogram: Histogram,
    /// Overall bus utilisation during the run.
    pub bus_utilization: f64,
}

impl From<RunMeasurement> for ContendedRun {
    fn from(m: RunMeasurement) -> Self {
        ContendedRun {
            execution_time: m.execution_time,
            bus_requests: m.bus_requests,
            gamma_histogram: m.gamma_histogram,
            contender_histogram: m.contender_histogram,
            bus_utilization: m.bus_utilization,
        }
    }
}

/// A paired isolated/contended measurement of one scua.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownMeasurement {
    /// The isolated run.
    pub isolated: IsolatedRun,
    /// The contended run.
    pub contended: ContendedRun,
}

impl SlowdownMeasurement {
    /// `det = ExecTime_contended − ExecTime_isol`, the total contention.
    pub fn det(&self) -> u64 {
        self.contended.execution_time.saturating_sub(self.isolated.execution_time)
    }

    /// The naive per-request bound `ubd_m = det / nr` (rounded up, the
    /// conservative reading), or `None` when the scua made no bus
    /// requests — batch runners record that as a per-run error instead
    /// of panicking.
    pub fn naive_ubd_m(&self) -> Option<u64> {
        if self.isolated.bus_requests == 0 {
            return None;
        }
        Some(self.det().div_ceil(self.isolated.bus_requests))
    }
}

/// Runs `program` alone on core 0 of a machine built from `cfg`.
///
/// # Errors
///
/// Returns [`RunError`] if the configuration is invalid, the cycle
/// budget is exhausted, or the program never terminates.
pub fn run_isolated(cfg: &MachineConfig, program: Program) -> Result<IsolatedRun, RunError> {
    Executor::new().run(&RunSpec::isolated("isolated", cfg.clone(), program)).map(IsolatedRun::from)
}

/// Runs `scua_program` on core 0 against `contender(core)` on every other
/// core.
///
/// # Errors
///
/// Returns [`RunError`] if the configuration is invalid, the cycle
/// budget is exhausted, or the scua never terminates.
pub fn run_contended<F>(
    cfg: &MachineConfig,
    scua_program: Program,
    mut contender: F,
) -> Result<ContendedRun, RunError>
where
    F: FnMut(CoreId) -> Program,
{
    let contenders = (1..cfg.num_cores).map(|i| contender(CoreId::new(i))).collect();
    Executor::new()
        .run(&RunSpec::contended("contended", cfg.clone(), scua_program, contenders))
        .map(ContendedRun::from)
}

/// Runs both measurements for one scua.
///
/// # Errors
///
/// Propagates any [`RunError`] from either run.
pub fn measure_slowdown<F>(
    cfg: &MachineConfig,
    scua_program: Program,
    contender: F,
) -> Result<SlowdownMeasurement, RunError>
where
    F: FnMut(CoreId) -> Program,
{
    let isolated = run_isolated(cfg, scua_program.clone())?;
    let contended = run_contended(cfg, scua_program, contender)?;
    Ok(SlowdownMeasurement { isolated, contended })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_kernels::{rsk, rsk_nop, AccessKind};

    fn cfg() -> MachineConfig {
        MachineConfig::ngmp_ref()
    }

    #[test]
    fn isolated_run_reports_requests() {
        let cfg = cfg();
        let p = rsk_nop(AccessKind::Load, 0, &cfg, CoreId::new(0), 100);
        let r = run_isolated(&cfg, p).expect("run");
        assert!(r.execution_time > 0);
        // 5 loads x 100 iterations plus a few cold ifetch/refill requests.
        assert!(r.bus_requests >= 500);
        assert_eq!(r.instructions, 500);
    }

    #[test]
    fn contention_slows_the_scua_down() {
        let cfg = cfg();
        let p = rsk_nop(AccessKind::Load, 0, &cfg, CoreId::new(0), 200);
        let m = measure_slowdown(&cfg, p, |c| rsk(AccessKind::Load, &cfg, c)).expect("run");
        assert!(m.det() > 0, "contenders must slow the scua down");
        // Each request suffers γ = 26 on the ref architecture.
        let per_request = m.det() as f64 / m.isolated.bus_requests as f64;
        assert!(
            (20.0..=27.0).contains(&per_request),
            "per-request contention {per_request} out of range"
        );
        assert!(m.contended.bus_utilization > 0.95);
    }

    #[test]
    fn naive_ubd_m_underestimates_truth() {
        // The paper's core observation, as a harness-level test.
        let cfg = cfg();
        let p = rsk_nop(AccessKind::Load, 0, &cfg, CoreId::new(0), 500);
        let m = measure_slowdown(&cfg, p, |c| rsk(AccessKind::Load, &cfg, c)).expect("run");
        let naive = m.naive_ubd_m().expect("scua made bus requests");
        assert!(naive < cfg.ubd(), "naive {naive} must undercut ubd {}", cfg.ubd());
        assert!(naive >= 20, "but it is not absurdly low either");
    }

    #[test]
    fn naive_ubd_m_is_none_without_bus_requests() {
        // A pure-compute scua has nr = 0; the estimator must decline
        // rather than panic (the old behaviour) so batch campaigns can
        // record it as a per-run error.
        let measurement = SlowdownMeasurement {
            isolated: IsolatedRun { execution_time: 100, bus_requests: 0, instructions: 50 },
            contended: ContendedRun {
                execution_time: 100,
                bus_requests: 0,
                gamma_histogram: Histogram::new(),
                contender_histogram: Histogram::new(),
                bus_utilization: 0.99,
            },
        };
        assert_eq!(measurement.naive_ubd_m(), None);
    }

    #[test]
    fn gamma_histogram_shows_synchrony_mode() {
        let cfg = cfg();
        let p = rsk_nop(AccessKind::Load, 0, &cfg, CoreId::new(0), 300);
        let r = run_contended(&cfg, p, |c| rsk(AccessKind::Load, &cfg, c)).expect("run");
        assert_eq!(r.gamma_histogram.mode(), Some(26));
        assert!(r.gamma_histogram.fraction(26) > 0.9);
    }

    #[test]
    fn det_is_zero_without_contenders() {
        let cfg = cfg();
        let p = rsk_nop(AccessKind::Load, 0, &cfg, CoreId::new(0), 50);
        let iso = run_isolated(&cfg, p.clone()).expect("run");
        let contended = run_contended(&cfg, p, |_| Program::empty()).expect("run");
        assert_eq!(contended.execution_time, iso.execution_time);
    }
}
