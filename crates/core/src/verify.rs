//! Exact worst-case delays per campaign cell: the bridge between the
//! bounded model checker ([`rrb_static::verify`]) and the campaign
//! layer, plus replay of the checker's adversarial witnesses on the full
//! simulator.
//!
//! Three numbers exist for every cell, and this module lines them up:
//!
//! * **static** — the analytic upper bound ([`crate::analyze`], closed
//!   formulas / response-time analysis). Sound by construction, possibly
//!   pessimistic.
//! * **exact** — the bounded-exhaustive worst case over all request
//!   alignments of the abstract single-resource model
//!   ([`rrb_static::exact_bounds`]). `exact ≤ observed ≤ static` is a
//!   theorem the checker re-proves per cell (where *observed* is core
//!   0's own static bound with the request-cycle tightenings);
//!   `exact / observed` is the **tightness certificate** — how much of
//!   the observed core's static bound is actually reachable.
//! * **measured** — what the cycle-accurate simulator observes when the
//!   checker's witness alignment is synthesised into a concrete workload
//!   ([`RunSpec::from_witness`]) and replayed. This is how the measured
//!   derivation finally covers `fp`/`fifo`: the methodology's saw-tooth
//!   refuses those arbiters, but a witness replay needs no period — it
//!   just runs the adversarial schedule and reads the worst γ off the
//!   PMCs.
//!
//! The replay sweeps the scua's nop padding over one rotation period
//! (the §4 argument: alignment is controlled modulo the period, so some
//! padding in `0..=period` lands the observed request in the witness's
//! alignment class) and keeps the worst measured delay. `measured ≤
//! exact` then becomes a machine-checkable soundness obligation of the
//! abstract model itself — enforced by `rrb verify --check-runs` and the
//! `prop_verify_exact` property test.

use crate::analyze::{
    analyze_grid_cell, analyze_workload, grid_cell_profiles, workload_profiles, CellStaticBound,
};
use crate::campaign::{CampaignGrid, GridCell, RunSpec};
use crate::executor::MachineArena;
use crate::json::Json;
use crate::spec::{ExperimentSpec, WorkloadCase};
use rrb_sim::{MachineConfig, ResourceKind};
use rrb_static::{exact_bounds, ExactBound, VerifyOptions, Witness};
use std::fmt::Write as _;

/// One verified campaign cell: the static bound, the exact bound per
/// resource, and the machine configuration needed to replay witnesses.
#[derive(Debug, Clone)]
pub struct VerifiedCell {
    /// The static-analysis row for the same cell.
    pub statics: CellStaticBound,
    /// The cell's machine configuration (for witness replay).
    pub cfg: MachineConfig,
    /// Exact bounds, one per shared resource on the request path.
    pub exact: Vec<ExactBound>,
}

impl VerifiedCell {
    /// The exact bus bound (`None` when the observed core starves).
    pub fn exact_bus(&self) -> Option<u64> {
        self.exact_for(ResourceKind::Bus)
    }

    /// The exact MC bound (`Some(0)` for single-level topologies).
    pub fn exact_mc(&self) -> Option<u64> {
        if self.exact.iter().any(|r| r.resource == ResourceKind::MemoryController) {
            self.exact_for(ResourceKind::MemoryController)
        } else {
            Some(0)
        }
    }

    fn exact_for(&self, kind: ResourceKind) -> Option<u64> {
        self.exact.iter().find(|r| r.resource == kind).and_then(|r| r.exact)
    }

    /// The composed exact total; `None` when any resource starves.
    pub fn exact_total(&self) -> Option<u64> {
        Some(self.exact_bus()?.saturating_add(self.exact_mc()?))
    }

    /// The tightness certificate `exact_total / observed_total` — the
    /// fraction of the *observed core's* static bound that is actually
    /// reachable by some alignment. The checker bounds core 0, so core
    /// 0's bound (which folds in the request-cycle tightenings) is the
    /// right denominator; dividing by the machine-wide total would
    /// penalise the certificate for pessimism that only applies to
    /// contender cores. `None` when either total is unbounded; `1.0`
    /// when the observed total is zero (nothing to be pessimistic
    /// about).
    pub fn tightness(&self) -> Option<f64> {
        let exact = self.exact_total()?;
        let observed = self.statics.observed_total()?;
        if observed == 0 {
            return Some(1.0);
        }
        Some(exact as f64 / observed as f64)
    }

    /// Soundness violations over the whole bound chain per resource and
    /// in total: `exact ≤ observed-core static ≤ machine-wide static`,
    /// plus `flow composed ≤ saturating sum`. Empty means the static
    /// model dominates the exhaustive search and the flow composition
    /// never exceeds the sum it claims to tighten.
    ///
    /// Note there is deliberately **no** `exact_total ≤ flow_total`
    /// check: the exact MC term is the single-resource worst case under
    /// unconstrained arrivals, while the flow MC term exploits bus
    /// serialisation — the abstract exact sum can legitimately exceed
    /// the flow composition (that is exactly the pessimism flow
    /// removes).
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for row in &self.exact {
            let (statics, observed) = match row.resource {
                ResourceKind::Bus => (self.statics.static_bus(), self.statics.observed_bus()),
                ResourceKind::MemoryController => {
                    (self.statics.static_mc(), self.statics.observed_mc())
                }
            };
            if let (Some(exact), Some(bound)) = (row.exact, statics) {
                if exact > bound {
                    out.push(format!(
                        "exact {} delay {exact} exceeds static bound {bound} on `{}`",
                        row.resource, self.statics.cell
                    ));
                }
            }
            if let (Some(exact), Some(obs)) = (row.exact, observed) {
                if exact > obs {
                    out.push(format!(
                        "exact {} delay {exact} exceeds observed-core bound {obs} on `{}`",
                        row.resource, self.statics.cell
                    ));
                }
            }
        }
        if let (Some(exact), Some(statics)) = (self.exact_total(), self.statics.static_total()) {
            if exact > statics {
                out.push(format!(
                    "exact total {exact} exceeds static total {statics} on `{}`",
                    self.statics.cell
                ));
            }
        }
        if let (Some(exact), Some(observed)) = (self.exact_total(), self.statics.observed_total()) {
            if exact > observed {
                out.push(format!(
                    "exact total {exact} exceeds observed-core total {observed} on `{}`",
                    self.statics.cell
                ));
            }
        }
        if let (Some(flow), Some(statics)) =
            (self.statics.flow_total(), self.statics.static_total())
        {
            if flow > statics {
                out.push(format!(
                    "flow composed {flow} exceeds saturating sum {statics} on `{}`",
                    self.statics.cell
                ));
            }
        }
        out
    }

    /// The witness for `kind`, if the checker found a delayed alignment.
    pub fn witness(&self, kind: ResourceKind) -> Option<&Witness> {
        self.exact.iter().find(|r| r.resource == kind).and_then(|r| r.witness.as_ref())
    }

    /// Total alignments simulated across this cell's resources.
    pub fn explored(&self) -> u64 {
        self.exact.iter().map(|r| r.explored).sum()
    }

    /// Total alignments pruned by symmetry across this cell's resources.
    pub fn pruned(&self) -> u64 {
        self.exact.iter().map(|r| r.pruned).sum()
    }

    /// The row as a JSON object (one line of `rrb verify --format json`
    /// and one element of `BENCH_verify.json`).
    pub fn to_json(&self) -> Json {
        let resources = self
            .exact
            .iter()
            .map(|r| {
                let statics = match r.resource {
                    ResourceKind::Bus => self.statics.static_bus(),
                    ResourceKind::MemoryController => self.statics.static_mc(),
                };
                let witness = r.witness.as_ref().map(|w| {
                    Json::obj(vec![
                        ("observed_gap", Json::U64(w.observed_gap)),
                        ("delay", Json::U64(w.delay)),
                        ("horizon", Json::U64(w.horizon)),
                        (
                            "contenders",
                            Json::Arr(
                                w.requesting_contenders()
                                    .into_iter()
                                    .map(|c| Json::U64(c as u64))
                                    .collect(),
                            ),
                        ),
                    ])
                });
                Json::obj(vec![
                    ("resource", Json::str(r.resource.to_string())),
                    ("occupancy", Json::U64(r.occupancy)),
                    ("static", Json::option(statics, Json::U64)),
                    ("exact", Json::option(r.exact, Json::U64)),
                    ("explored", Json::U64(r.explored)),
                    ("pruned", Json::U64(r.pruned)),
                    ("witness", witness.unwrap_or(Json::Null)),
                    ("reason", Json::option(r.reason.clone(), Json::Str)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("cell", Json::str(self.statics.cell.clone())),
            ("num_cores", Json::U64(self.statics.num_cores as u64)),
            ("arbiter", Json::str(self.statics.arbiter.clone())),
            ("static_total", Json::option(self.statics.static_total(), Json::U64)),
            ("observed_total", Json::option(self.statics.observed_total(), Json::U64)),
            ("flow_total", Json::option(self.statics.flow_total(), Json::U64)),
            ("flow_slack", Json::option(self.statics.flow_slack(), Json::U64)),
            ("exact_total", Json::option(self.exact_total(), Json::U64)),
            ("tightness", Json::option(self.tightness(), Json::F64)),
            ("explored", Json::U64(self.explored())),
            ("pruned", Json::U64(self.pruned())),
            ("sound", Json::Bool(self.violations().is_empty())),
            ("resources", Json::Arr(resources)),
        ])
    }
}

/// Verifies one expanded grid cell: static bounds plus exact bounds over
/// the same demand profiles.
pub fn verify_grid_cell(cell: &GridCell, opts: &VerifyOptions) -> VerifiedCell {
    let statics = analyze_grid_cell(cell);
    let profiles = grid_cell_profiles(cell);
    let exact = exact_bounds(&cell.cfg, &profiles, opts);
    VerifiedCell { statics, cfg: cell.cfg.clone(), exact }
}

/// Verifies one workload case on `machine`.
pub fn verify_workload(
    machine: &MachineConfig,
    case: &WorkloadCase,
    opts: &VerifyOptions,
) -> VerifiedCell {
    let statics = analyze_workload(machine, case);
    let profiles = workload_profiles(machine, case);
    let exact = exact_bounds(machine, &profiles, opts);
    VerifiedCell { statics, cfg: machine.clone(), exact }
}

/// Verifies every cell a spec would run, in campaign enumeration order.
pub fn verify_spec(spec: &ExperimentSpec, opts: &VerifyOptions) -> Vec<VerifiedCell> {
    let mut rows = Vec::new();
    if let Some(grid) = spec.to_grid() {
        rows.extend(grid.cells().iter().map(|cell| verify_grid_cell(cell, opts)));
    }
    for case in &spec.workloads {
        rows.push(verify_workload(&spec.machine, case, opts));
    }
    rows
}

/// Verifies every cell of a [`CampaignGrid`] directly.
pub fn verify_grid(grid: &CampaignGrid, opts: &VerifyOptions) -> Vec<VerifiedCell> {
    grid.cells().iter().map(|cell| verify_grid_cell(cell, opts)).collect()
}

/// The outcome of replaying one witness on the full simulator.
#[derive(Debug, Clone)]
pub struct WitnessReplay {
    /// Cell the witness belongs to.
    pub cell: String,
    /// The resource the witness attacks.
    pub resource: ResourceKind,
    /// The exact worst-case delay the witness certifies.
    pub exact: u64,
    /// Worst measured γ at the resource across the padding sweep.
    pub measured: Option<u64>,
    /// The nop padding that realised the worst measured γ.
    pub best_nops: Option<u64>,
    /// Runs executed (one per padding value).
    pub runs: usize,
    /// Per-run errors, if any (label plus cause).
    pub errors: Vec<String>,
}

impl WitnessReplay {
    /// `measured / exact` — how much of the exhaustive worst case the
    /// cycle-accurate machine reproduces. `1.0` when `exact` is zero.
    pub fn tightness(&self) -> Option<f64> {
        let measured = self.measured?;
        if self.exact == 0 {
            return Some(1.0);
        }
        Some(measured as f64 / self.exact as f64)
    }

    /// A soundness violation of the abstract model: the real machine
    /// measured a delay *above* the exhaustive worst case.
    pub fn violation(&self) -> Option<String> {
        let measured = self.measured?;
        if measured > self.exact {
            Some(format!(
                "measured {} γ {measured} exceeds exact bound {} on `{}`",
                self.resource, self.exact, self.cell
            ))
        } else {
            None
        }
    }

    /// The replay row as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cell", Json::str(self.cell.clone())),
            ("resource", Json::str(self.resource.to_string())),
            ("exact", Json::U64(self.exact)),
            ("measured", Json::option(self.measured, Json::U64)),
            ("tightness", Json::option(self.tightness(), Json::F64)),
            ("best_nops", Json::option(self.best_nops, Json::U64)),
            ("runs", Json::U64(self.runs as u64)),
            ("errors", Json::Arr(self.errors.iter().cloned().map(Json::str).collect())),
        ])
    }
}

/// Replays one witness: synthesises [`RunSpec::from_witness`] for every
/// nop padding in `0..=period` (one rotation period of the witness's
/// arbiter — the §4 coverage argument) and keeps the worst measured γ at
/// the witness resource.
pub fn replay_witness(
    cell: &str,
    cfg: &MachineConfig,
    witness: &Witness,
    iterations: u64,
) -> WitnessReplay {
    let period = (witness.num_cores as u64).saturating_mul(witness.occupancy.max(1));
    let mut measured: Option<u64> = None;
    let mut best_nops = None;
    let mut errors = Vec::new();
    let mut runs = 0;
    // One warm machine replays every nop offset: the specs differ only in
    // their programs, so each run is a reset, not a rebuild.
    let mut arena = MachineArena::new();
    for nops in 0..=period {
        let label = format!("{cell}/witness-{}/k{nops}", witness.resource);
        let spec = RunSpec::from_witness(label.clone(), cfg.clone(), witness, nops, iterations);
        runs += 1;
        match arena.execute(&spec) {
            Ok(m) => {
                let gamma = match witness.resource {
                    ResourceKind::Bus => m.max_gamma(),
                    ResourceKind::MemoryController => m.max_gamma_mc(),
                };
                if let Some(gamma) = gamma {
                    if measured.is_none_or(|best| gamma > best) {
                        measured = Some(gamma);
                        best_nops = Some(nops);
                    }
                }
            }
            Err(e) => errors.push(format!("{label}: {e}")),
        }
    }
    WitnessReplay {
        cell: cell.to_string(),
        resource: witness.resource,
        exact: witness.delay,
        measured,
        best_nops,
        runs,
        errors,
    }
}

/// Replays every witness a verified cell carries.
pub fn replay_cell_witnesses(cell: &VerifiedCell, iterations: u64) -> Vec<WitnessReplay> {
    cell.exact
        .iter()
        .filter_map(|row| row.witness.as_ref())
        .map(|w| replay_witness(&cell.statics.cell, &cell.cfg, w, iterations))
        .collect()
}

/// Renders verified cells as an aligned text table with a one-line
/// verdict, mirroring [`crate::analyze::render_rows`].
pub fn render_verified(rows: &[VerifiedCell]) -> String {
    let mut out = String::new();
    let name_width = rows.iter().map(|r| r.statics.cell.len()).max().unwrap_or(4).max(4);
    let _ = writeln!(
        out,
        "{:<name_width$}  {:>10}  {:>9}  {:>9}  {:>8}  {:>9}  {:>9}  {:>8}  {:>12}  status",
        "cell",
        "exact(bus)",
        "exact(mc)",
        "stat(tot)",
        "obs(tot)",
        "flow(tot)",
        "exact(tot)",
        "tight",
        "arbiter"
    );
    for r in rows {
        let fmt_opt = |v: Option<u64>| match v {
            Some(v) => v.to_string(),
            None => "unbounded".to_string(),
        };
        let tight = match r.tightness() {
            Some(t) => format!("{t:.3}"),
            None => "-".to_string(),
        };
        let violations = r.violations();
        let status = if let Some(v) = violations.first() {
            format!("UNSOUND: {v}")
        } else if r.exact_total().is_some() {
            "exact".to_string()
        } else {
            let reason = r.exact.iter().find_map(|row| row.reason.as_deref()).unwrap_or("unknown");
            format!("unbounded: {reason}")
        };
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>10}  {:>9}  {:>9}  {:>8}  {:>9}  {:>9}  {:>8}  {:>12}  {}",
            r.statics.cell,
            fmt_opt(r.exact_bus()),
            fmt_opt(r.exact_mc()),
            fmt_opt(r.statics.static_total()),
            fmt_opt(r.statics.observed_total()),
            fmt_opt(r.statics.flow_total()),
            fmt_opt(r.exact_total()),
            tight,
            r.statics.arbiter,
            status,
        );
    }
    let unsound = rows.iter().filter(|r| !r.violations().is_empty()).count();
    let unbounded = rows.iter().filter(|r| r.exact_total().is_none()).count();
    let explored: u64 = rows.iter().map(VerifiedCell::explored).sum();
    let pruned: u64 = rows.iter().map(VerifiedCell::pruned).sum();
    let _ = writeln!(
        out,
        "{} cells: {} exact, {} unbounded, {} UNSOUND ({} alignments explored, {} pruned)",
        rows.len(),
        rows.len() - unsound - unbounded,
        unbounded,
        unsound,
        explored,
        pruned,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignGrid, GridScenario};
    use rrb_kernels::AccessKind;
    use rrb_sim::{ArbiterKind, McQueueConfig};

    fn toy_grid() -> CampaignGrid {
        CampaignGrid::new(GridScenario::Derive, MachineConfig::toy(4, 2))
            .arbiters(vec![ArbiterKind::RoundRobin, ArbiterKind::FixedPriority, ArbiterKind::Fifo])
            .cores(vec![2, 4])
            .accesses(vec![AccessKind::Load])
            .contender_accesses(vec![AccessKind::Load])
            .iterations(vec![40])
            .max_k(8)
    }

    #[test]
    fn every_toy_cell_verifies_sound_and_exact() {
        let rows = verify_grid(&toy_grid(), &VerifyOptions::default());
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.violations().is_empty(), "cell `{}`", row.statics.cell);
            assert!(row.exact_total().is_some(), "cell `{}`", row.statics.cell);
            assert!(row.explored() > 0, "cell `{}`", row.statics.cell);
        }
    }

    #[test]
    fn round_robin_certificate_exposes_the_lookup_cycle() {
        let rows = verify_grid(&toy_grid(), &VerifyOptions::default());
        let rr4 = rows.iter().find(|r| r.statics.cell.contains("/rr/c4/")).expect("rr c4");
        // The Eq. 1 envelope is 6, but a load kernel's repost gap is at
        // least the DL1 lookup, so the reachable worst case is one
        // lower. The observed-core static bound proves exactly that
        // shave, so the certificate against it is perfect.
        assert_eq!(rr4.exact_total(), Some(5));
        assert_eq!(rr4.statics.static_total(), Some(6));
        assert_eq!(rr4.statics.observed_total(), Some(5));
        let tight = rr4.tightness().expect("finite");
        assert!((tight - 1.0).abs() < 1e-9, "exact == observed for rr: {tight}");
    }

    #[test]
    fn fixed_priority_certifies_a_much_tighter_exact_bound() {
        let rows = verify_grid(&toy_grid(), &VerifyOptions::default());
        let fp4 = rows.iter().find(|r| r.statics.cell.contains("/fp/c4/")).expect("fp c4");
        // Core 0 is highest priority: only blocking (L - 1) is
        // reachable, and the observed-core bound proves it statically —
        // the machine-wide total stays far above both.
        assert_eq!(fp4.exact_bus(), Some(1));
        let observed = fp4.statics.observed_total().expect("finite observed");
        let statics = fp4.statics.static_total().expect("finite static");
        assert!(observed < statics, "fp observed {observed} should undercut static {statics}");
        let tight = fp4.tightness().expect("finite");
        assert!((tight - 1.0).abs() < 1e-9, "exact == observed for top-priority fp: {tight}");
    }

    #[test]
    fn witness_replay_reaches_the_exact_bound_for_rr() {
        let rows = verify_grid(&toy_grid(), &VerifyOptions::default());
        let rr4 = rows.iter().find(|r| r.statics.cell.contains("/rr/c4/")).expect("rr c4");
        let replays = replay_cell_witnesses(rr4, 40);
        assert_eq!(replays.len(), 1);
        let replay = &replays[0];
        assert!(replay.errors.is_empty(), "{:?}", replay.errors);
        assert_eq!(replay.violation(), None);
        assert_eq!(replay.measured, Some(replay.exact), "measured must hit exact for rr");
    }

    #[test]
    fn witness_replay_covers_fifo_which_the_methodology_refuses() {
        let rows = verify_grid(&toy_grid(), &VerifyOptions::default());
        let fifo4 = rows.iter().find(|r| r.statics.cell.contains("/fifo/c4/")).expect("fifo c4");
        let replays = replay_cell_witnesses(fifo4, 40);
        let replay = &replays[0];
        assert!(replay.errors.is_empty(), "{:?}", replay.errors);
        assert_eq!(replay.violation(), None);
        let measured = replay.measured.expect("fifo replay must measure");
        assert!(measured >= 1, "fifo replay must observe contention, got {measured}");
    }

    #[test]
    fn two_level_cells_verify_both_resources() {
        let mut cfg = MachineConfig::toy(4, 2);
        cfg.topology.mc = Some(McQueueConfig { service_occupancy: 2, arbiter: ArbiterKind::Fifo });
        let grid = CampaignGrid::new(GridScenario::Derive, cfg)
            .arbiters(vec![ArbiterKind::RoundRobin])
            .cores(vec![4])
            .iterations(vec![40])
            .max_k(8);
        let rows = verify_grid(&grid, &VerifyOptions::default());
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.exact.len(), 2);
        assert!(row.violations().is_empty());
        assert!(row.exact_mc().expect("mc exact") > 0);
    }

    #[test]
    fn render_and_json_carry_the_certificate() {
        let rows = verify_grid(&toy_grid(), &VerifyOptions::default());
        let text = render_verified(&rows);
        assert!(text.contains("6 cells: 6 exact, 0 unbounded, 0 UNSOUND"), "{text}");
        let json = rows[0].to_json().render_pretty();
        assert!(json.contains("\"tightness\""), "{json}");
        assert!(json.contains("\"sound\": true"), "{json}");
    }
}
