//! Measurement-based timing analysis (MBTA) on top of the derived bound —
//! the "Using ubd_m" workflow of §4.3, industrialised.
//!
//! Given a platform characterisation (one [`UbdDerivation`] per access
//! type) and a set of software components, this module measures each
//! component in isolation, bounds its bus requests, and emits padded
//! execution-time bounds:
//!
//! ```text
//! ETB(task) = ExecTime_isol(task) + nr(task) × ubd_m
//! ```
//!
//! It can also *validate* the bounds empirically, running each task
//! against worst-case contenders and checking that no observed execution
//! time exceeds its ETB — the regression a certification campaign would
//! automate.

use crate::campaign::RunError;
use crate::experiment::{run_contended, run_isolated};
use crate::methodology::{derive_ubd, MethodologyConfig, MethodologyError, UbdDerivation};
use rrb_analysis::EtbPadding;
use rrb_kernels::{rsk, AccessKind};
use rrb_sim::{MachineConfig, Program};
use std::fmt;

/// A software component submitted for analysis.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Human-readable name.
    pub name: String,
    /// The task's program (finite).
    pub program: Program,
}

impl TaskSpec {
    /// A named task.
    pub fn new(name: impl Into<String>, program: Program) -> Self {
        TaskSpec { name: name.into(), program }
    }
}

/// The analysed bound for one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskBound {
    /// Task name.
    pub name: String,
    /// Isolation execution time (cycles).
    pub isolation_time: u64,
    /// Bus requests observed in isolation (`nr`).
    pub bus_requests: u64,
    /// Contention pad (`nr × ubd_m`).
    pub pad: u64,
    /// The execution-time bound.
    pub etb: u64,
}

impl TaskBound {
    /// The bound's relative contention overhead, `pad / isolation_time`.
    pub fn overhead(&self) -> f64 {
        if self.isolation_time == 0 {
            0.0
        } else {
            self.pad as f64 / self.isolation_time as f64
        }
    }
}

impl fmt::Display for TaskBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: isol {} + pad {} = ETB {} cycles ({:.1}% overhead)",
            self.name,
            self.isolation_time,
            self.pad,
            self.etb,
            self.overhead() * 100.0
        )
    }
}

/// Result of validating one task's bound against contended runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundValidation {
    /// Task name.
    pub name: String,
    /// The bound under test.
    pub etb: u64,
    /// Worst contended execution time observed.
    pub worst_observed: u64,
    /// Remaining slack (`etb - worst_observed`; negative would mean the
    /// bound is unsound, reported via [`BoundValidation::holds`]).
    pub slack: i64,
}

impl BoundValidation {
    /// Whether every observation fit under the bound.
    pub fn holds(&self) -> bool {
        self.slack >= 0
    }
}

/// A platform characterisation plus the tooling to bound task sets.
#[derive(Debug, Clone)]
pub struct MbtaAnalysis {
    cfg: MachineConfig,
    derivation: UbdDerivation,
}

impl MbtaAnalysis {
    /// Characterises the platform by running the full rsk-nop methodology.
    ///
    /// # Errors
    ///
    /// Propagates any [`MethodologyError`] from the derivation.
    pub fn characterise(
        cfg: &MachineConfig,
        mcfg: &MethodologyConfig,
    ) -> Result<Self, MethodologyError> {
        let derivation = derive_ubd(cfg, mcfg)?;
        Ok(MbtaAnalysis { cfg: cfg.clone(), derivation })
    }

    /// Builds an analysis from an existing derivation (e.g. to reuse one
    /// characterisation across many task sets).
    pub fn from_derivation(cfg: MachineConfig, derivation: UbdDerivation) -> Self {
        MbtaAnalysis { cfg, derivation }
    }

    /// The platform bound in use — the bus share of the derivation.
    pub fn ubd_m(&self) -> u64 {
        self.derivation.ubd_m
    }

    /// The per-request pad applied to ETBs. On single-bus topologies
    /// this equals [`MbtaAnalysis::ubd_m`]. On two-level topologies the
    /// rsk-nop sweep cannot provoke controller-queue contention (its
    /// steady-state traffic hits in L2), so the *measured* mc share is
    /// not a bound; the pad instead adds each non-bus resource's Eq. 1
    /// term `(Nc − 1)·l_r` from the platform configuration, keeping the
    /// ETB an upper bound even for tasks whose co-runners queue at the
    /// controller.
    pub fn pad_per_request(&self) -> u64 {
        let beyond_bus: u64 = self.cfg.ubd_breakdown().iter().skip(1).map(|t| t.ubd).sum();
        self.derivation.ubd_m + beyond_bus
    }

    /// The underlying derivation (audit trail).
    pub fn derivation(&self) -> &UbdDerivation {
        &self.derivation
    }

    /// Bounds one task: measure in isolation, pad with
    /// `nr × pad_per_request` (the bus-derived bound plus the Eq. 1 term
    /// of every further resource on the path, so two-level topologies
    /// pad for controller-queue contention too).
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the isolation run fails.
    pub fn bound_task(&self, task: &TaskSpec) -> Result<TaskBound, RunError> {
        let isolated = run_isolated(&self.cfg, task.program.clone())?;
        let padding = EtbPadding::new(isolated.bus_requests, self.pad_per_request());
        Ok(TaskBound {
            name: task.name.clone(),
            isolation_time: isolated.execution_time,
            bus_requests: isolated.bus_requests,
            pad: padding.pad(),
            etb: padding.etb(isolated.execution_time),
        })
    }

    /// Bounds a whole task set.
    ///
    /// # Errors
    ///
    /// Fails on the first task whose isolation run fails.
    pub fn bound_tasks(&self, tasks: &[TaskSpec]) -> Result<Vec<TaskBound>, RunError> {
        tasks.iter().map(|t| self.bound_task(t)).collect()
    }

    /// Empirically validates a task's bound: runs it against `trials`
    /// different saturating contender mixes and reports the worst case.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if any run fails.
    pub fn validate_bound(
        &self,
        task: &TaskSpec,
        bound: &TaskBound,
        trials: u32,
    ) -> Result<BoundValidation, RunError> {
        let mut worst = 0u64;
        for trial in 0..trials {
            // Alternate contender access types across trials to explore
            // both the load and the store contention shapes.
            let access = if trial % 2 == 0 { AccessKind::Load } else { AccessKind::Store };
            let contended =
                run_contended(&self.cfg, task.program.clone(), |c| rsk(access, &self.cfg, c))?;
            worst = worst.max(contended.execution_time);
        }
        Ok(BoundValidation {
            name: bound.name.clone(),
            etb: bound.etb,
            worst_observed: worst,
            slack: bound.etb as i64 - worst as i64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_kernels::{rsk_nop, AutobenchKernel};
    use rrb_sim::CoreId;

    fn toy_analysis() -> MbtaAnalysis {
        let cfg = MachineConfig::toy(4, 2);
        MbtaAnalysis::characterise(&cfg, &MethodologyConfig::fast()).expect("characterisation")
    }

    #[test]
    fn characterisation_recovers_toy_ubd() {
        let a = toy_analysis();
        assert_eq!(a.ubd_m(), 6);
    }

    #[test]
    fn task_bound_structure() {
        let a = toy_analysis();
        let cfg = MachineConfig::toy(4, 2);
        let task =
            TaskSpec::new("rsk-nop-3", rsk_nop(AccessKind::Load, 3, &cfg, CoreId::new(0), 100));
        let b = a.bound_task(&task).expect("bound");
        assert_eq!(b.pad, b.bus_requests * 6);
        assert_eq!(b.etb, b.isolation_time + b.pad);
        assert!(b.overhead() > 0.0);
        assert!(b.to_string().contains("rsk-nop-3"));
    }

    #[test]
    fn bounds_hold_for_kernel_tasks() {
        let a = toy_analysis();
        let cfg = MachineConfig::toy(4, 2);
        for k in [0usize, 2, 5] {
            let task = TaskSpec::new(
                format!("rsk-nop-{k}"),
                rsk_nop(AccessKind::Load, k, &cfg, CoreId::new(0), 150),
            );
            let bound = a.bound_task(&task).expect("bound");
            let v = a.validate_bound(&task, &bound, 2).expect("validation");
            assert!(v.holds(), "{}: slack {}", v.name, v.slack);
        }
    }

    #[test]
    fn bounds_hold_for_eembc_task() {
        let a = toy_analysis();
        let cfg = MachineConfig::toy(4, 2);
        let task = TaskSpec::new(
            "canrdr",
            AutobenchKernel::Canrdr.profile().program(&cfg, CoreId::new(0), 5, Some(80)),
        );
        let bound = a.bound_task(&task).expect("bound");
        let v = a.validate_bound(&task, &bound, 2).expect("validation");
        assert!(v.holds(), "slack {}", v.slack);
    }

    #[test]
    fn task_set_bounds_are_per_task() {
        let a = toy_analysis();
        let cfg = MachineConfig::toy(4, 2);
        let tasks = vec![
            TaskSpec::new("t1", rsk_nop(AccessKind::Load, 1, &cfg, CoreId::new(0), 50)),
            TaskSpec::new("t2", rsk_nop(AccessKind::Load, 4, &cfg, CoreId::new(0), 50)),
        ];
        let bounds = a.bound_tasks(&tasks).expect("bounds");
        assert_eq!(bounds.len(), 2);
        assert_eq!(bounds[0].name, "t1");
        assert!(bounds[1].isolation_time > bounds[0].isolation_time);
    }

    #[test]
    fn from_derivation_reuses_characterisation() {
        let a = toy_analysis();
        let cfg = MachineConfig::toy(4, 2);
        let b = MbtaAnalysis::from_derivation(cfg, a.derivation().clone());
        assert_eq!(b.ubd_m(), 6);
    }
}
