//! Static bounds for experiment specs: the bridge between the
//! [`rrb_static`] analyzer and the campaign layer.
//!
//! Expands a spec into exactly the cells the campaign would run —
//! [`CampaignGrid::cells`] for grids, one cell per workload case — builds
//! sound per-core demand profiles for each cell's programs, and computes a
//! machine-wide [`StaticBound`] per cell. Every cell gets an answer: where
//! the measurement methodology refuses an arbiter (no saw-tooth period to
//! recover for `fp`/`fifo`), the static model still produces its analytic
//! bound.
//!
//! Two soundness cross-checks hang off the result:
//!
//! * [`CellStaticBound::violation`] — the static bound fell below the
//!   analytic truth `Σ (Nc-1)·l_r` (a bug in the static model);
//! * [`check_measured`] — an observed per-request delay from an actual
//!   campaign run exceeded the static bound (a bug in the static model or
//!   the simulator).

use crate::campaign::{CampaignGrid, CampaignResult, GridCell};
use crate::json::Json;
use crate::spec::{ExperimentSpec, WorkloadCase};
use rrb_kernels::{rsk, rsk_nop, KernelSpec};
use rrb_sim::{CoreId, MachineConfig, ResourceKind};
pub use rrb_static::{
    classified_profile, compose_flow, profile_program, ComposedBound, CoreProfile, FlowTerm,
    ResourceBound, StaticBound,
};
use std::fmt::Write as _;

/// The static bound for one campaign cell, alongside the analytic truth
/// it must dominate.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStaticBound {
    /// Cell (scenario) name, matching the campaign's record names.
    pub cell: String,
    /// Cores contending in this cell.
    pub num_cores: usize,
    /// Bus arbiter token (`rr`, `fp`, `fifo`, `tdma:<s>`, `grr:<g>`).
    pub arbiter: String,
    /// Analytic truth for the bus term, `(Nc-1)·l_bus` (Eq. 1).
    pub truth_bus: u64,
    /// Analytic truth for the MC term (0 for single-level topologies).
    pub truth_mc: u64,
    /// The composed machine-wide static bound (worst-case envelope
    /// profiles — unchanged by the flow layer, so existing baselines
    /// stay pinned).
    pub bound: StaticBound,
    /// The interference-flow composition for the observed core, computed
    /// from must/may-classified demand profiles.
    pub composed: ComposedBound,
}

impl CellStaticBound {
    /// Sum of the per-resource truth terms ([`MachineConfig::ubd`]).
    pub fn truth_total(&self) -> u64 {
        self.truth_bus.saturating_add(self.truth_mc)
    }

    /// The composed static bound; `None` when some resource is unbounded.
    pub fn static_total(&self) -> Option<u64> {
        self.bound.total()
    }

    /// The static bus term.
    pub fn static_bus(&self) -> Option<u64> {
        self.bound.resource(ResourceKind::Bus).and_then(|r| r.bound)
    }

    /// The static MC term (`Some(0)` for single-level topologies).
    pub fn static_mc(&self) -> Option<u64> {
        match self.bound.resource(ResourceKind::MemoryController) {
            Some(r) => r.bound,
            None => Some(0),
        }
    }

    /// The observed core's static total: the machine-wide terms with the
    /// request-cycle tightenings core 0's known demand permits. This is
    /// the denominator of the verifier's tightness certificate — the
    /// exact checker bounds core 0, so core 0's bound is what exactness
    /// is measured against.
    pub fn observed_total(&self) -> Option<u64> {
        self.bound.observed_total()
    }

    /// The observed core's bus term.
    pub fn observed_bus(&self) -> Option<u64> {
        self.bound.resource(ResourceKind::Bus).and_then(|r| r.observed)
    }

    /// The observed core's MC term (`Some(0)` for single-level
    /// topologies).
    pub fn observed_mc(&self) -> Option<u64> {
        match self.bound.resource(ResourceKind::MemoryController) {
            Some(r) => r.observed,
            None => Some(0),
        }
    }

    /// The flow-composed total for the observed core.
    pub fn flow_total(&self) -> Option<u64> {
        self.composed.flow_total()
    }

    /// The flow-composed bus term.
    pub fn flow_bus(&self) -> Option<u64> {
        self.composed.term(ResourceKind::Bus).and_then(|t| t.flow)
    }

    /// The flow-composed MC term (`Some(0)` for single-level topologies).
    pub fn flow_mc(&self) -> Option<u64> {
        match self.composed.term(ResourceKind::MemoryController) {
            Some(t) => t.flow,
            None => Some(0),
        }
    }

    /// Provable slack between the saturating static total and the flow
    /// composition: interference the saturating sum charges that no
    /// execution of this workload can realise.
    pub fn flow_slack(&self) -> Option<u64> {
        Some(self.static_total()?.saturating_sub(self.flow_total()?))
    }

    /// A soundness violation: the static bound fell below the analytic
    /// truth. `None` when the bound is sound (or honestly unbounded).
    pub fn violation(&self) -> Option<String> {
        let total = self.static_total()?;
        if total < self.truth_total() {
            return Some(format!(
                "static bound {total} < analytic truth {} on `{}`",
                self.truth_total(),
                self.cell
            ));
        }
        // The flow composition refines the *observed core's* bound, so it
        // may drop below the machine-wide truth — but it must never
        // exceed the saturating sum it claims to refine.
        if let Some(flow) = self.flow_total() {
            if flow > total {
                return Some(format!(
                    "flow composed {flow} exceeds saturating sum {total} on `{}`",
                    self.cell
                ));
            }
        }
        None
    }

    /// The row as a JSON object (used by `rrb analyze --json` and the
    /// topology ablation's `BENCH_static.json`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cell", Json::str(self.cell.clone())),
            ("num_cores", Json::U64(self.num_cores as u64)),
            ("arbiter", Json::str(self.arbiter.clone())),
            ("truth_bus", Json::U64(self.truth_bus)),
            ("truth_mc", Json::U64(self.truth_mc)),
            ("truth_total", Json::U64(self.truth_total())),
            ("static_bus", Json::option(self.static_bus(), Json::U64)),
            ("static_mc", Json::option(self.static_mc(), Json::U64)),
            ("static_total", Json::option(self.static_total(), Json::U64)),
            ("flow_bus", Json::option(self.flow_bus(), Json::U64)),
            ("flow_mc", Json::option(self.flow_mc(), Json::U64)),
            ("flow_total", Json::option(self.flow_total(), Json::U64)),
            ("flow_slack", Json::option(self.flow_slack(), Json::U64)),
            ("finite", Json::Bool(self.bound.is_finite())),
            ("sound_vs_truth", Json::Bool(self.violation().is_none())),
            ("reason", Json::option(self.bound.reason().map(String::from), Json::Str)),
        ])
    }
}

/// Truth terms of a config, as (bus, mc).
fn truth_terms(cfg: &MachineConfig) -> (u64, u64) {
    let mut bus = 0;
    let mut mc = 0;
    for term in cfg.ubd_breakdown() {
        match term.resource {
            ResourceKind::Bus => bus = term.ubd,
            ResourceKind::MemoryController => mc = term.ubd,
        }
    }
    (bus, mc)
}

/// Profile of a kernel spec on `cfg`; falls back to the saturating
/// envelope if the kernel cannot be built for this machine.
fn profile_kernel(kernel: &KernelSpec, cfg: &MachineConfig, core: CoreId) -> CoreProfile {
    match kernel.try_build(cfg, core) {
        Ok(program) => profile_program(&program, cfg),
        Err(_) => CoreProfile::saturating(),
    }
}

/// Classified (must/may) profile of a kernel spec on `cfg`; same
/// fallback behaviour as [`profile_kernel`].
fn classify_kernel(kernel: &KernelSpec, cfg: &MachineConfig, core: CoreId) -> CoreProfile {
    match kernel.try_build(cfg, core) {
        Ok(program) => classified_profile(&program, cfg, core),
        Err(_) => CoreProfile::saturating(),
    }
}

/// Per-core demand profiles for a grid cell: the scua sweeps
/// `rsk-nop(t, k)` for `k = 0..=max_k` (joined over the endpoints — the
/// count/makespan envelope is monotone in `k`), the other cores run
/// endless resource-stressing kernels.
pub(crate) fn grid_cell_profiles(cell: &GridCell) -> Vec<CoreProfile> {
    let cfg = &cell.cfg;
    let scua0 = rsk_nop(cell.access, 0, cfg, CoreId::new(0), cell.iterations);
    let scua_k = rsk_nop(cell.access, cell.max_k, cfg, CoreId::new(0), cell.iterations);
    let scua = profile_program(&scua0, cfg).join(&profile_program(&scua_k, cfg));
    let mut profiles = vec![scua];
    for core in 1..cfg.num_cores {
        let contender = rsk(cell.contender_access, cfg, CoreId::new(core));
        profiles.push(profile_program(&contender, cfg));
    }
    profiles
}

/// Classified per-core demand profiles for a grid cell: the same
/// programs as [`grid_cell_profiles`], but with must/may-proven request
/// counts and gaps instead of the worst-case envelope.
pub(crate) fn grid_cell_classified_profiles(cell: &GridCell) -> Vec<CoreProfile> {
    let cfg = &cell.cfg;
    let scua0 = rsk_nop(cell.access, 0, cfg, CoreId::new(0), cell.iterations);
    let scua_k = rsk_nop(cell.access, cell.max_k, cfg, CoreId::new(0), cell.iterations);
    let scua = classified_profile(&scua0, cfg, CoreId::new(0)).join(&classified_profile(
        &scua_k,
        cfg,
        CoreId::new(0),
    ));
    let mut profiles = vec![scua];
    for core in 1..cfg.num_cores {
        let id = CoreId::new(core);
        let contender = rsk(cell.contender_access, cfg, id);
        profiles.push(classified_profile(&contender, cfg, id));
    }
    profiles
}

/// Statically bounds one expanded grid cell.
pub fn analyze_grid_cell(cell: &GridCell) -> CellStaticBound {
    let profiles = grid_cell_profiles(cell);
    let bound = StaticBound::analyze(&cell.cfg, &profiles);
    let composed = compose_flow(&cell.cfg, &grid_cell_classified_profiles(cell));
    let (truth_bus, truth_mc) = truth_terms(&cell.cfg);
    CellStaticBound {
        cell: cell.name.clone(),
        num_cores: cell.cfg.num_cores,
        arbiter: cell.cfg.topology.bus.arbiter.to_string(),
        truth_bus,
        truth_mc,
        bound,
        composed,
    }
}

/// Per-core demand profiles for a workload case: the scua on core 0,
/// each contender kernel on the next core up, truncated to the machine.
pub(crate) fn workload_profiles(machine: &MachineConfig, case: &WorkloadCase) -> Vec<CoreProfile> {
    let mut profiles = vec![profile_kernel(&case.scua, machine, CoreId::new(0))];
    for (i, contender) in case.contenders.iter().enumerate() {
        let core = CoreId::new((i + 1).min(machine.num_cores.saturating_sub(1)));
        profiles.push(profile_kernel(contender, machine, core));
    }
    profiles.truncate(machine.num_cores);
    profiles
}

/// Classified per-core demand profiles for a workload case.
pub(crate) fn workload_classified_profiles(
    machine: &MachineConfig,
    case: &WorkloadCase,
) -> Vec<CoreProfile> {
    let mut profiles = vec![classify_kernel(&case.scua, machine, CoreId::new(0))];
    for (i, contender) in case.contenders.iter().enumerate() {
        let core = CoreId::new((i + 1).min(machine.num_cores.saturating_sub(1)));
        profiles.push(classify_kernel(contender, machine, core));
    }
    profiles.truncate(machine.num_cores);
    profiles
}

/// Statically bounds one workload case on `machine`.
pub fn analyze_workload(machine: &MachineConfig, case: &WorkloadCase) -> CellStaticBound {
    let profiles = workload_profiles(machine, case);
    let bound = StaticBound::analyze(machine, &profiles);
    let composed = compose_flow(machine, &workload_classified_profiles(machine, case));
    let (truth_bus, truth_mc) = truth_terms(machine);
    CellStaticBound {
        cell: case.name.clone(),
        num_cores: machine.num_cores,
        arbiter: machine.topology.bus.arbiter.to_string(),
        truth_bus,
        truth_mc,
        bound,
        composed,
    }
}

/// Statically bounds every cell a spec would run: each grid cell (in the
/// campaign's enumeration order), then each workload case.
pub fn analyze_spec(spec: &ExperimentSpec) -> Vec<CellStaticBound> {
    let mut rows = Vec::new();
    if let Some(grid) = spec.to_grid() {
        rows.extend(grid.cells().iter().map(analyze_grid_cell));
    }
    for case in &spec.workloads {
        rows.push(analyze_workload(&spec.machine, case));
    }
    rows
}

/// Statically bounds every cell of a [`CampaignGrid`] directly.
pub fn analyze_grid(grid: &CampaignGrid) -> Vec<CellStaticBound> {
    grid.cells().iter().map(analyze_grid_cell).collect()
}

/// Cross-checks measured per-request delays from a campaign run against
/// the static bounds: any observed `γ` above the cell's static bound is a
/// soundness violation. Returns one message per violation.
pub fn check_measured(rows: &[CellStaticBound], result: &CampaignResult) -> Vec<String> {
    let mut violations = Vec::new();
    for record in result.records.iter().filter(|r| r.is_ok()) {
        let Some(row) = rows.iter().find(|row| row.cell == record.scenario) else {
            continue;
        };
        let checks = [
            ("bus", record.max_gamma, row.static_bus()),
            ("mc", record.max_gamma_mc, row.static_mc()),
        ];
        for (what, observed, bound) in checks {
            if let (Some(observed), Some(bound)) = (observed, bound) {
                if observed > bound {
                    violations.push(format!(
                        "measured {what} γ {observed} exceeds static bound {bound} on `{}` ({})",
                        record.scenario, record.label
                    ));
                }
            }
        }
        // The flow composition bounds the observed core's *total* worst
        // per-request delay across the topology, so the measured bus γ
        // plus MC γ must stay under it.
        if let Some(flow) = row.flow_total() {
            let total =
                record.max_gamma.unwrap_or(0).saturating_add(record.max_gamma_mc.unwrap_or(0));
            if total > flow {
                violations.push(format!(
                    "measured composed γ {total} exceeds flow bound {flow} on `{}` ({})",
                    record.scenario, record.label
                ));
            }
        }
    }
    violations
}

/// Per-cell measured/static tightness from a campaign run: how much of
/// the static bound the worst observed delay actually realised. A low
/// ratio is not a bug — it quantifies the pessimism of the static model
/// on that cell (Fig. 5's "how tight is the bound" question).
#[derive(Debug, Clone, PartialEq)]
pub struct CellTightness {
    /// Cell (scenario) name.
    pub cell: String,
    /// Worst observed total delay across the cell's runs (bus γ + MC γ).
    pub measured: u64,
    /// The cell's finite static total.
    pub static_total: u64,
    /// `measured / static_total` (1.0 when the static total is zero).
    pub tightness: f64,
}

/// Computes per-cell measured/static tightness for every cell that has
/// both a finite static total and at least one successful run record.
pub fn measured_tightness(rows: &[CellStaticBound], result: &CampaignResult) -> Vec<CellTightness> {
    let mut out = Vec::new();
    for row in rows {
        let Some(static_total) = row.static_total() else { continue };
        let mut measured: Option<u64> = None;
        for record in result.records.iter().filter(|r| r.is_ok() && r.scenario == row.cell) {
            let total = record.max_gamma.unwrap_or(0) + record.max_gamma_mc.unwrap_or(0);
            measured = Some(measured.map_or(total, |m| m.max(total)));
        }
        let Some(measured) = measured else { continue };
        let tightness = if static_total == 0 { 1.0 } else { measured as f64 / static_total as f64 };
        out.push(CellTightness { cell: row.cell.clone(), measured, static_total, tightness });
    }
    out
}

/// Renders the rows as an aligned text table with a one-line verdict.
pub fn render_rows(rows: &[CellStaticBound]) -> String {
    let mut out = String::new();
    let name_width = rows.iter().map(|r| r.cell.len()).max().unwrap_or(4).max(4);
    let _ = writeln!(
        out,
        "{:<name_width$}  {:>5}  {:>9}  {:>10}  {:>9}  {:>12}  status",
        "cell", "truth", "stat(bus)", "stat(mc)", "stat(tot)", "arbiter"
    );
    for r in rows {
        let fmt_opt = |v: Option<u64>| match v {
            Some(v) => v.to_string(),
            None => "unbounded".to_string(),
        };
        let status = if let Some(v) = r.violation() {
            format!("UNSOUND: {v}")
        } else if r.bound.is_finite() {
            "sound".to_string()
        } else {
            format!("unbounded: {}", r.bound.reason().unwrap_or("unknown"))
        };
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>5}  {:>9}  {:>10}  {:>9}  {:>12}  {}",
            r.cell,
            r.truth_total(),
            fmt_opt(r.static_bus()),
            fmt_opt(r.static_mc()),
            fmt_opt(r.static_total()),
            r.arbiter,
            status,
        );
    }
    let unsound = rows.iter().filter(|r| r.violation().is_some()).count();
    let unbounded = rows.iter().filter(|r| !r.bound.is_finite()).count();
    let _ = writeln!(
        out,
        "{} cells: {} sound, {} unbounded, {} UNSOUND",
        rows.len(),
        rows.len() - unsound - unbounded,
        unbounded,
        unsound,
    );
    out
}

/// Renders the rows with the interference-flow columns next to the
/// saturating sum (`rrb analyze --composed`): the flow-composed bus and
/// MC terms for the observed core, the composed total, and the provable
/// slack the saturating sum leaves on the table.
pub fn render_rows_composed(rows: &[CellStaticBound]) -> String {
    let mut out = String::new();
    let name_width = rows.iter().map(|r| r.cell.len()).max().unwrap_or(4).max(4);
    let _ = writeln!(
        out,
        "{:<name_width$}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>6}  {:>12}  status",
        "cell", "stat(tot)", "flow(bus)", "flow(mc)", "flow(tot)", "slack", "s/f", "arbiter"
    );
    for r in rows {
        let fmt_opt = |v: Option<u64>| match v {
            Some(v) => v.to_string(),
            None => "unbounded".to_string(),
        };
        let ratio = match (r.static_total(), r.flow_total()) {
            (Some(s), Some(f)) if f > 0 => format!("{:.2}", s as f64 / f as f64),
            (Some(_), Some(0)) => "inf".to_string(),
            _ => "-".to_string(),
        };
        let status = if let Some(v) = r.violation() {
            format!("UNSOUND: {v}")
        } else if r.composed.is_finite() {
            "sound".to_string()
        } else {
            format!("unbounded: {}", r.bound.reason().unwrap_or("unknown"))
        };
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>6}  {:>12}  {}",
            r.cell,
            fmt_opt(r.static_total()),
            fmt_opt(r.flow_bus()),
            fmt_opt(r.flow_mc()),
            fmt_opt(r.flow_total()),
            fmt_opt(r.flow_slack()),
            ratio,
            r.arbiter,
            status,
        );
    }
    let total_slack: u64 = rows.iter().filter_map(CellStaticBound::flow_slack).sum();
    let _ = writeln!(
        out,
        "{} cells, {} cycles of provable slack attributed across the topology",
        rows.len(),
        total_slack,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignGrid, GridScenario};
    use rrb_kernels::AccessKind;
    use rrb_sim::ArbiterKind;

    fn toy_grid() -> CampaignGrid {
        CampaignGrid::new(GridScenario::Derive, MachineConfig::toy(4, 2))
            .arbiters(vec![ArbiterKind::RoundRobin, ArbiterKind::FixedPriority, ArbiterKind::Fifo])
            .cores(vec![2, 4])
            .accesses(vec![AccessKind::Load])
            .contender_accesses(vec![AccessKind::Load])
            .iterations(vec![40])
            .max_k(8)
    }

    #[test]
    fn every_grid_cell_gets_a_finite_sound_bound() {
        let rows = analyze_grid(&toy_grid());
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.bound.is_finite(), "cell `{}` must not be refused", row.cell);
            assert_eq!(row.violation(), None, "cell `{}` must dominate truth", row.cell);
        }
    }

    #[test]
    fn round_robin_cells_match_eq1_exactly() {
        let rows = analyze_grid(&toy_grid());
        let rr4 = rows.iter().find(|r| r.cell.contains("/rr/c4/")).expect("rr c4 cell");
        assert_eq!(rr4.static_total(), Some(6));
        assert_eq!(rr4.truth_total(), 6);
    }

    #[test]
    fn fixed_priority_cells_use_the_window_bound() {
        let rows = analyze_grid(&toy_grid());
        let fp4 = rows.iter().find(|r| r.cell.contains("/fp/c4/")).expect("fp c4 cell");
        let total = fp4.static_total().expect("finite via run window");
        assert!(total >= fp4.truth_total());
    }

    #[test]
    fn composed_flow_shaves_the_lookup_cycle_on_rr_cells() {
        let rows = analyze_grid(&toy_grid());
        let rr4 = rows.iter().find(|r| r.cell.contains("/rr/c4/")).expect("rr c4 cell");
        // The classified scua has a proven request gap, so the observed
        // core's flow bound drops the request cycle: (4-1)*2 - 1.
        assert_eq!(rr4.flow_total(), Some(5), "{:?}", rr4.composed);
        assert_eq!(rr4.flow_slack(), Some(1));
        assert_eq!(rr4.static_total(), Some(6), "the saturating sum is untouched");
    }

    #[test]
    fn composed_flow_zeroes_the_mc_term_when_the_bus_serialises_arrivals() {
        let mut cfg = MachineConfig::toy(4, 2);
        cfg.topology.mc =
            Some(rrb_sim::McQueueConfig { service_occupancy: 2, arbiter: ArbiterKind::Fifo });
        let grid = CampaignGrid::new(GridScenario::Derive, cfg)
            .arbiters(vec![ArbiterKind::RoundRobin])
            .cores(vec![4])
            .accesses(vec![AccessKind::Load])
            .contender_accesses(vec![AccessKind::Load])
            .iterations(vec![40])
            .max_k(8);
        let rows = analyze_grid(&grid);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.static_total(), Some(12), "saturating: bus 6 + mc 6");
        assert_eq!(
            row.flow_mc(),
            Some(0),
            "transfer occupancy covers the service: {:?}",
            row.composed
        );
        assert_eq!(row.flow_total(), Some(5), "{:?}", row.composed);
        assert_eq!(row.violation(), None);
        let text = render_rows_composed(&rows);
        assert!(text.contains("flow(tot)"), "{text}");
    }

    #[test]
    fn analyze_spec_covers_grid_and_workloads() {
        let spec = ExperimentSpec::from_grid("toy", &toy_grid());
        let rows = analyze_spec(&spec);
        assert_eq!(rows.len(), 6);
        let text = render_rows(&rows);
        assert!(text.contains("6 cells: 6 sound, 0 unbounded, 0 UNSOUND"), "summary: {text}");
    }
}
