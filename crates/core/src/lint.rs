//! Static semantic checks on experiment specs (`rrb lint`).
//!
//! A spec can parse and validate yet still describe an experiment that
//! silently measures nothing: a TDMA slot the worst bus transaction never
//! fits (every request starves), a grid axis left empty (zero cells), a
//! nop sweep too short to cover two saw-tooth periods, a finite contender
//! that falls silent halfway through the scua. This pass catches those
//! before any cycle is simulated; CI runs it over every checked-in spec.
//!
//! Findings carry the same dotted field paths as [`SpecError::Field`]
//! diagnostics (e.g. `grid.cores`, `workloads[0].contenders[2]`), so a
//! finding always points at the exact field to fix.
//!
//! [`SpecError::Field`]: crate::spec::SpecError

use crate::json::Json;
use crate::spec::ExperimentSpec;
use rrb_kernels::{rsk, AccessKind, KernelSpec};
use rrb_sim::{ArbiterKind, CoreId, MachineConfig};
use rrb_static::{classified_profile, compose_flow, steady_state_silent};
use std::fmt;
use std::fmt::Write as _;

/// How bad a lint finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintSeverity {
    /// The experiment cannot produce a meaningful result.
    Error,
    /// The experiment runs but likely does not measure what was intended.
    Warning,
}

impl fmt::Display for LintSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintSeverity::Error => write!(f, "error"),
            LintSeverity::Warning => write!(f, "warning"),
        }
    }
}

/// One lint finding: a severity, the dotted path of the offending field,
/// and what is wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Error or warning.
    pub severity: LintSeverity,
    /// Dotted field path (e.g. `grid.methodology.max_k`).
    pub path: String,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: spec field `{}`: {}", self.severity, self.path, self.message)
    }
}

impl LintFinding {
    /// The finding as a JSON object (one NDJSON line of
    /// `rrb lint --format json`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("severity", Json::str(self.severity.to_string())),
            ("path", Json::str(self.path.clone())),
            ("message", Json::str(self.message.clone())),
        ])
    }
}

/// Whether any finding is an error (the CLI's exit criterion).
pub fn has_errors(findings: &[LintFinding]) -> bool {
    findings.iter().any(|f| f.severity == LintSeverity::Error)
}

/// Renders findings one per line, with a closing summary line.
pub fn render_findings(findings: &[LintFinding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{f}");
    }
    let errors = findings.iter().filter(|f| f.severity == LintSeverity::Error).count();
    let _ = writeln!(
        out,
        "{} findings ({} errors, {} warnings)",
        findings.len(),
        errors,
        findings.len() - errors
    );
    out
}

struct Linter {
    findings: Vec<LintFinding>,
}

impl Linter {
    fn error(&mut self, path: impl Into<String>, message: impl Into<String>) {
        self.findings.push(LintFinding {
            severity: LintSeverity::Error,
            path: path.into(),
            message: message.into(),
        });
    }

    fn warning(&mut self, path: impl Into<String>, message: impl Into<String>) {
        self.findings.push(LintFinding {
            severity: LintSeverity::Warning,
            path: path.into(),
            message: message.into(),
        });
    }
}

fn worst_bus_occupancy(machine: &MachineConfig) -> u64 {
    let bus = &machine.topology.bus;
    bus.l2_hit_occupancy.max(bus.transfer_occupancy).max(bus.store_occupancy)
}

/// Checks one arbiter's compatibility with the machine and the largest
/// swept core count.
fn lint_arbiter(
    lint: &mut Linter,
    path: &str,
    arbiter: ArbiterKind,
    machine: &MachineConfig,
    max_cores: usize,
) {
    match arbiter {
        ArbiterKind::Tdma { slot_cycles } => {
            let worst = worst_bus_occupancy(machine);
            if slot_cycles < worst {
                lint.error(
                    path,
                    format!(
                        "tdma slot {slot_cycles} is shorter than the worst bus occupancy \
                         {worst}; the arbiter only grants requests that fit the remaining \
                         slot, so those transactions starve forever"
                    ),
                );
            }
        }
        ArbiterKind::GroupedRoundRobin { group_size } => {
            if group_size == 0 {
                lint.error(path, "grouped round-robin group size must be at least 1");
            } else if group_size >= max_cores && max_cores > 0 {
                lint.warning(
                    path,
                    format!(
                        "group size {group_size} covers every swept core count (max \
                         {max_cores}); the arbiter degenerates to plain round-robin"
                    ),
                );
            }
        }
        _ => {}
    }
}

/// Flags a topology whose saturating sum is more than 2x the flow
/// composition under the canonical derive workload (a classified rsk
/// load kernel on every core): any per-resource sum reported against
/// this machine carries that much provable pessimism, so consumers
/// should read the flow columns (`rrb analyze --composed`) instead.
fn lint_composed_slack(lint: &mut Linter, machine: &MachineConfig) {
    if machine.num_cores < 2 {
        return;
    }
    let profiles: Vec<_> = (0..machine.num_cores)
        .map(|c| {
            let prog = rsk(AccessKind::Load, machine, CoreId::new(c));
            classified_profile(&prog, machine, CoreId::new(c))
        })
        .collect();
    let composed = compose_flow(machine, &profiles);
    if let (Some(flow), Some(sum)) = (composed.flow_total(), composed.sum_total()) {
        if flow.saturating_mul(2) < sum {
            lint.warning(
                "machine.topology",
                format!(
                    "composed_slack: the saturating sum ({sum} cycles) is more than 2x \
                     the flow-composed bound ({flow} cycles) on this topology; the bus \
                     serialises memory-controller arrivals, so per-resource sums carry \
                     {} provably unreachable cycles — read the flow columns \
                     (`rrb analyze --composed`)",
                    sum - flow
                ),
            );
        }
    }
}

fn lint_kernel(lint: &mut Linter, path: &str, kernel: &KernelSpec, machine: &MachineConfig) {
    if let Err(e) = kernel.try_build(machine, CoreId::new(0)) {
        lint.error(path, format!("kernel cannot be built for this machine: {e}"));
    }
}

/// Runs every lint check over `spec`. An empty result means the spec is
/// clean; [`has_errors`] decides pass/fail.
pub fn lint_spec(spec: &ExperimentSpec) -> Vec<LintFinding> {
    let mut lint = Linter { findings: Vec::new() };
    let machine = &spec.machine;

    if spec.name.trim().is_empty() {
        lint.error("name", "experiment name is empty");
    }

    // ---- machine ------------------------------------------------------
    if machine.num_cores < 2 && spec.grid.is_none() {
        lint.warning(
            "machine.num_cores",
            "a single core has no contenders; every measured delay will be zero",
        );
    }
    lint_arbiter(
        &mut lint,
        "machine.topology.bus.arbiter",
        machine.topology.bus.arbiter,
        machine,
        machine.num_cores,
    );
    if let Some(mc) = &machine.topology.mc {
        if let ArbiterKind::Tdma { slot_cycles } = mc.arbiter {
            if slot_cycles < mc.service_occupancy {
                lint.error(
                    "machine.topology.mc.arbiter",
                    format!(
                        "tdma slot {slot_cycles} is shorter than the controller service \
                         occupancy {}; admissions starve forever",
                        mc.service_occupancy
                    ),
                );
            }
        }
    }
    lint_composed_slack(&mut lint, machine);

    // ---- grid ---------------------------------------------------------
    if let Some(grid) = &spec.grid {
        let axes: [(&str, usize); 5] = [
            ("grid.arbiters", grid.arbiters.len()),
            ("grid.cores", grid.cores.len()),
            ("grid.accesses", grid.accesses.len()),
            ("grid.contender_accesses", grid.contender_accesses.len()),
            ("grid.iterations", grid.iterations.len()),
        ];
        for (path, len) in axes {
            if len == 0 {
                lint.error(path, "dangling grid axis: an empty list expands to zero cells");
            }
        }
        let max_cores = grid.cores.iter().copied().max().unwrap_or(0);
        for (i, &cores) in grid.cores.iter().enumerate() {
            if cores == 0 {
                lint.error(format!("grid.cores[{i}]"), "a zero-core machine cannot run");
            } else if cores == 1 {
                lint.warning(
                    format!("grid.cores[{i}]"),
                    "a single core has no contenders; the cell measures nothing",
                );
            }
        }
        for (i, &arbiter) in grid.arbiters.iter().enumerate() {
            lint_arbiter(&mut lint, &format!("grid.arbiters[{i}]"), arbiter, machine, max_cores);
        }
        for (i, &iters) in grid.iterations.iter().enumerate() {
            if iters == 0 {
                lint.error(
                    format!("grid.iterations[{i}]"),
                    "zero iterations: the scua never requests",
                );
            }
        }

        // Measurement-window sanity: the nop sweep must cover at least two
        // saw-tooth periods (the period equals the bus term of the bound)
        // for the period matcher to have two anchor points (§4.1).
        let worst = worst_bus_occupancy(machine);
        let period = (max_cores.saturating_sub(1) as u64).saturating_mul(worst);
        if period > 0 && (grid.max_k as u64) < 2 * period {
            lint.warning(
                "grid.max_k",
                format!(
                    "nop sweep tops out at {} but one saw-tooth period can reach {period} \
                     cycles; cover at least two periods ({}) for the matcher to lock on",
                    grid.max_k,
                    2 * period
                ),
            );
        }
        let m = &grid.methodology;
        if m.iterations == 0 {
            lint.error("grid.methodology.iterations", "zero iterations: the scua never requests");
        }
        if m.calibration_iterations == 0 {
            lint.error(
                "grid.methodology.calibration_iterations",
                "zero calibration iterations: δ_nop cannot be measured",
            );
        }
        if !(m.min_bus_utilization > 0.0 && m.min_bus_utilization <= 1.0) {
            lint.error(
                "grid.methodology.min_bus_utilization",
                format!(
                    "{} is outside (0, 1]; the §4.3 confidence check is meaningless",
                    m.min_bus_utilization
                ),
            );
        }
        if period > 0 && m.tolerance >= period {
            lint.warning(
                "grid.methodology.tolerance",
                format!(
                    "tolerance {} is at least one saw-tooth period ({period}); the period \
                     matcher will accept any candidate",
                    m.tolerance
                ),
            );
        }
    }

    // ---- workloads ----------------------------------------------------
    for (i, case) in spec.workloads.iter().enumerate() {
        let base = format!("workloads[{i}]");
        if case.name.trim().is_empty() {
            lint.error(format!("{base}.name"), "workload name is empty");
        }
        if !case.scua.is_finite() {
            lint.error(
                format!("{base}.scua"),
                "the observed kernel must be finite for its execution time to exist",
            );
        }
        lint_kernel(&mut lint, &format!("{base}.scua"), &case.scua, machine);
        let contender_slots = machine.num_cores.saturating_sub(1);
        if case.contenders.len() > contender_slots {
            lint.error(
                format!("{base}.contenders"),
                format!(
                    "{} contenders but only {contender_slots} non-scua cores",
                    case.contenders.len()
                ),
            );
        } else if case.contenders.len() < contender_slots {
            lint.warning(
                format!("{base}.contenders"),
                format!(
                    "{} contenders leave {} cores idle; contention is below the \
                     machine's worst case",
                    case.contenders.len(),
                    contender_slots - case.contenders.len()
                ),
            );
        }
        for (j, contender) in case.contenders.iter().enumerate() {
            let cpath = format!("{base}.contenders[{j}]");
            if contender.is_finite() {
                lint.warning(
                    &cpath,
                    "finite contender can complete before the scua and fall silent; \
                     endless kernels keep pressure constant (§3.1)",
                );
            }
            lint_kernel(&mut lint, &cpath, contender, machine);
            if let Ok(program) = contender.try_build(machine, CoreId::new(j + 1)) {
                if steady_state_silent(&program, machine) {
                    lint.warning(
                        &cpath,
                        "contender never posts a bus or memory-controller request; \
                         it adds no contention and the cell silently measures isolation",
                    );
                }
            }
        }
    }
    for (i, a) in spec.workloads.iter().enumerate() {
        if let Some(j) = spec.workloads.iter().skip(i + 1).position(|b| b.name == a.name) {
            lint.error(
                format!("workloads[{}].name", i + 1 + j),
                format!("duplicate workload name `{}`; campaign records would collide", a.name),
            );
        }
    }

    lint.findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignGrid, GridScenario};
    use rrb_kernels::AccessKind;

    fn clean_spec() -> ExperimentSpec {
        let grid = CampaignGrid::new(GridScenario::Derive, MachineConfig::toy(4, 2))
            .arbiters(vec![ArbiterKind::RoundRobin])
            .cores(vec![2, 4])
            .accesses(vec![AccessKind::Load])
            .contender_accesses(vec![AccessKind::Load])
            .iterations(vec![40])
            .max_k(16)
            .methodology(crate::MethodologyConfig::fast());
        ExperimentSpec::from_grid("toy", &grid)
    }

    #[test]
    fn clean_spec_has_no_errors() {
        let findings = lint_spec(&clean_spec());
        assert!(!has_errors(&findings), "{findings:?}");
    }

    #[test]
    fn empty_axis_is_a_dangling_grid_error() {
        let mut spec = clean_spec();
        spec.grid.as_mut().expect("grid").cores.clear();
        let findings = lint_spec(&spec);
        assert!(findings
            .iter()
            .any(|f| f.severity == LintSeverity::Error && f.path == "grid.cores"));
    }

    #[test]
    fn starving_tdma_slot_is_an_error_with_a_dotted_path() {
        let mut spec = clean_spec();
        // Worst occupancy on the toy bus is 2; a 1-cycle slot never fits.
        spec.grid.as_mut().expect("grid").arbiters = vec![ArbiterKind::Tdma { slot_cycles: 1 }];
        let findings = lint_spec(&spec);
        let hit = findings.iter().find(|f| f.path == "grid.arbiters[0]").expect("tdma finding");
        assert_eq!(hit.severity, LintSeverity::Error);
        assert!(hit.message.contains("starve"), "{}", hit.message);
    }

    #[test]
    fn short_nop_sweep_is_flagged() {
        let mut spec = clean_spec();
        spec.grid.as_mut().expect("grid").max_k = 3;
        let findings = lint_spec(&spec);
        assert!(findings.iter().any(|f| f.path == "grid.max_k"), "{findings:?}");
    }

    #[test]
    fn finite_contender_is_a_warning() {
        let mut spec = clean_spec();
        spec.workloads.push(crate::spec::WorkloadCase {
            name: "case".into(),
            scua: KernelSpec::Rsk { access: AccessKind::Load },
            contenders: vec![KernelSpec::RskNop {
                access: AccessKind::Load,
                nops: 0,
                iterations: 10,
            }],
        });
        let findings = lint_spec(&spec);
        // The endless rsk scua is an error; the finite contender a warning.
        assert!(findings.iter().any(|f| f.path == "workloads[0].scua"));
        assert!(
            findings
                .iter()
                .any(|f| f.path == "workloads[0].contenders[0]"
                    && f.severity == LintSeverity::Warning)
        );
    }

    #[test]
    fn findings_render_with_dotted_paths() {
        let mut spec = clean_spec();
        spec.grid.as_mut().expect("grid").cores.clear();
        let text = render_findings(&lint_spec(&spec));
        assert!(text.contains("spec field `grid.cores`"), "{text}");
    }

    #[test]
    fn grr_group_spanning_every_core_warns_of_degeneration() {
        let mut spec = clean_spec();
        // Max cores in the clean grid is 4; one group of 4 is plain rr.
        spec.grid.as_mut().expect("grid").arbiters =
            vec![ArbiterKind::GroupedRoundRobin { group_size: 4 }];
        let findings = lint_spec(&spec);
        let hit = findings.iter().find(|f| f.path == "grid.arbiters[0]").expect("grr finding");
        assert_eq!(hit.severity, LintSeverity::Warning);
        assert!(hit.message.contains("degenerates"), "{}", hit.message);
    }

    #[test]
    fn tdma_slot_matching_worst_occupancy_is_boundary_not_starvation() {
        let mut spec = clean_spec();
        // Worst occupancy on the toy(4, 2) bus is exactly 2: a 2-cycle slot
        // fits every transaction with zero slack and must lint clean.
        spec.grid.as_mut().expect("grid").arbiters = vec![ArbiterKind::Tdma { slot_cycles: 2 }];
        let findings = lint_spec(&spec);
        assert!(
            !findings.iter().any(|f| f.path == "grid.arbiters[0]"),
            "boundary slot flagged: {findings:?}"
        );
    }

    #[test]
    fn serialised_two_level_topology_warns_of_composed_slack() {
        let mut spec = clean_spec();
        spec.machine.topology.mc =
            Some(rrb_sim::McQueueConfig { service_occupancy: 2, arbiter: ArbiterKind::Fifo });
        let findings = lint_spec(&spec);
        let hit =
            findings.iter().find(|f| f.path == "machine.topology").expect("composed_slack finding");
        assert_eq!(hit.severity, LintSeverity::Warning);
        assert!(hit.message.contains("composed_slack"), "{}", hit.message);
        // A single-level topology has at most the lookup cycle of slack.
        let clean = lint_spec(&clean_spec());
        assert!(!clean.iter().any(|f| f.path == "machine.topology"), "{clean:?}");
    }

    #[test]
    fn always_hitting_contender_is_flagged_by_the_classification() {
        let mut spec = clean_spec();
        // A single-line pointer chase stays DL1-resident after the cold
        // fill: the old accesses-memory heuristic could not prove this
        // contender silent, the must/may classification can.
        spec.workloads.push(crate::spec::WorkloadCase {
            name: "resident".into(),
            scua: KernelSpec::RskNop { access: AccessKind::Load, nops: 0, iterations: 10 },
            contenders: vec![KernelSpec::PointerChase { lines: 1, seed: 1 }],
        });
        let findings = lint_spec(&spec);
        assert!(
            findings.iter().any(
                |f| f.path == "workloads[0].contenders[0]" && f.message.contains("never posts")
            ),
            "{findings:?}"
        );
    }

    #[test]
    fn contender_that_never_requests_is_a_warning_not_a_silent_pass() {
        let mut spec = clean_spec();
        spec.workloads.push(crate::spec::WorkloadCase {
            name: "quiet".into(),
            scua: KernelSpec::RskNop { access: AccessKind::Load, nops: 0, iterations: 10 },
            contenders: vec![KernelSpec::Nop { iterations: 10 }],
        });
        let findings = lint_spec(&spec);
        let hit = findings
            .iter()
            .find(|f| f.path == "workloads[0].contenders[0]" && f.message.contains("never posts"))
            .expect("silent-contender finding");
        assert_eq!(hit.severity, LintSeverity::Warning);
    }
}
