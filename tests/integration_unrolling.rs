//! The loop-boundary experiment of §5.2: "the load operations in the
//! boundary of loop iterations have a higher injection time than
//! consecutive load operations inside the body due to the effect of
//! loop-iteration control operations. In our case we unroll the loop body
//! as much as possible not to cause instruction cache misses. This allows
//! reducing the overhead to less than 2%."
//!
//! These tests quantify exactly that: with an explicit loop-control
//! instruction in the body, the boundary load's injection time grows by
//! `branch_latency`; unrolling amortises the boundary until its effect on
//! both the execution time and the derived statistics is negligible.

use rrb_analysis::Histogram;
use rrb_kernels::{rsk, AccessKind, RskBuilder};
use rrb_sim::{CoreId, Machine, MachineConfig};

/// Gamma histogram of an unrolled-with-branch rsk against 3 rsk.
fn gamma_hist(cfg: &MachineConfig, unroll: usize, iterations: u64) -> Histogram {
    let scua = RskBuilder::new(AccessKind::Load)
        .unroll(unroll)
        .with_branch(true)
        .iterations(iterations)
        .build(cfg, CoreId::new(0));
    let mut m = Machine::new(cfg.clone()).expect("config");
    m.load_program(CoreId::new(0), scua);
    for i in 1..cfg.num_cores {
        m.load_program(CoreId::new(i), rsk(AccessKind::Load, cfg, CoreId::new(i)));
    }
    m.run().expect("run");
    Histogram::from_bins(m.pmc().core(CoreId::new(0)).gamma_histogram.iter().map(|(&g, &n)| (g, n)))
}

#[test]
fn boundary_load_suffers_different_gamma() {
    // Without unrolling, one load in W+1 sits at the loop boundary and
    // sees injection time δ_rsk + branch = 2, hence γ = 25 instead of 26.
    let cfg = MachineConfig::ngmp_ref();
    let h = gamma_hist(&cfg, 1, 500);
    assert!(h.count(26) > 0, "interior loads at 26: {h}");
    assert!(h.count(25) > 0, "boundary loads at 25: {h}");
    // Exactly 1 in 5 loads is a boundary load.
    let boundary_fraction = h.count(25) as f64 / h.total() as f64;
    assert!((0.15..0.25).contains(&boundary_fraction), "boundary fraction {boundary_fraction}");
}

#[test]
fn unrolling_amortises_the_boundary() {
    let cfg = MachineConfig::ngmp_ref();
    for unroll in [4usize, 16] {
        let h = gamma_hist(&cfg, unroll, 200);
        let boundary_fraction = h.count(25) as f64 / h.total() as f64;
        let expected = 1.0 / (unroll as f64 * 5.0);
        assert!(
            boundary_fraction < expected * 1.5 + 0.01,
            "unroll {unroll}: boundary fraction {boundary_fraction} vs expected ~{expected}"
        );
    }
}

#[test]
fn unrolled_kernel_keeps_execution_overhead_under_two_percent() {
    // The paper's < 2 % claim: execution time of the unrolled
    // kernel-with-branch vs the ideal fully-unrolled kernel.
    let cfg = MachineConfig::ngmp_ref();
    let loads_total = 16 * 5 * 100; // same dynamic loads in both kernels

    let run_time = |with_branch: bool| {
        let b = RskBuilder::new(AccessKind::Load).unroll(16).with_branch(with_branch);
        let scua = b.iterations(100).build(&cfg, CoreId::new(0));
        assert_eq!(scua.dynamic_memory_ops(), Some(loads_total));
        let mut m = Machine::new(cfg.clone()).expect("config");
        m.load_program(CoreId::new(0), scua);
        m.run().expect("run").core(CoreId::new(0)).execution_time().expect("done")
    };

    let ideal = run_time(false);
    let with_branch = run_time(true);
    let overhead = (with_branch - ideal) as f64 / ideal as f64;
    assert!(
        overhead < 0.02,
        "loop-control overhead {:.3}% must stay under the paper's 2%",
        overhead * 100.0
    );
}

#[test]
fn ifetch_misses_appear_when_the_body_overflows_il1() {
    // The flip side of "as much as possible without causing instruction
    // cache misses": a body larger than IL1 generates fetch traffic that
    // perturbs the measurements — quantified here as a positive control
    // for the unrolling guidance.
    let cfg = MachineConfig::ngmp_ref();
    // IL1 is 16 KB = 4096 instruction slots; overflow it decisively.
    let big = RskBuilder::new(AccessKind::Load)
        .unroll(1)
        .nops(1200) // 5 * 1201 = 6005 instructions
        .iterations(5)
        .build(&cfg, CoreId::new(0));
    let mut m = Machine::new(cfg.clone()).expect("config");
    m.load_program(CoreId::new(0), big);
    m.run().expect("run");
    let pmc = m.pmc().core(CoreId::new(0));
    let ifetches =
        pmc.records.iter().filter(|r| matches!(r.kind, rrb_sim::BusOpKind::Ifetch)).count();
    // Each of the 5 iterations re-misses the whole body footprint.
    assert!(ifetches > 500, "an IL1-overflowing body must fetch continuously, got {ifetches}");

    let small = RskBuilder::new(AccessKind::Load)
        .unroll(1)
        .nops(10)
        .iterations(5)
        .build(&cfg, CoreId::new(0));
    let mut m2 = Machine::new(cfg.clone()).expect("config");
    m2.load_program(CoreId::new(0), small);
    m2.run().expect("run");
    let small_ifetches = m2
        .pmc()
        .core(CoreId::new(0))
        .records
        .iter()
        .filter(|r| matches!(r.kind, rrb_sim::BusOpKind::Ifetch))
        .count();
    assert!(small_ifetches < 20, "an IL1-resident body fetches only once: {small_ifetches}");
}
