//! Properties of the bounded model checker (`rrb verify`): for
//! randomized arbiters, topologies, and workloads,
//!
//! 1. the exact worst-case delay never exceeds a finite static bound
//!    (`exact <= static` — the tightness certificate is a fraction),
//! 2. every adversarial witness replays to exactly the delay it claims
//!    (the checker's maximum is constructive, not an estimate), and
//! 3. replaying a witness on the full cycle-accurate simulator never
//!    measures a delay above the exact bound (the abstract arbiter
//!    model dominates the real machine).
//!
//! Cases are drawn from the workspace's deterministic [`KernelRng`], so
//! a failure reproduces exactly.

use rrb::campaign::{CampaignGrid, GridScenario};
use rrb::statics::{exact_bounds, profile_program, CoreProfile, StaticBound, VerifyOptions};
use rrb::verify::{replay_cell_witnesses, verify_grid};
use rrb_kernels::{rsk, AccessKind, KernelRng, RskBuilder};
use rrb_sim::{ArbiterKind, CoreId, MachineConfig, McQueueConfig, Program};

/// Runs `body` for `cases` pseudo-random cases drawn from a fixed seed.
fn for_cases(seed: u64, cases: usize, mut body: impl FnMut(&mut KernelRng)) {
    let mut rng = KernelRng::seed_from_u64(seed);
    for _ in 0..cases {
        body(&mut rng);
    }
}

/// A random bus arbiter that cannot starve by construction (TDMA slots
/// always fit the worst occupancy).
fn random_arbiter(rng: &mut KernelRng, num_cores: usize, worst_occ: u64) -> ArbiterKind {
    match rng.gen_below(5) {
        0 => ArbiterKind::RoundRobin,
        1 => ArbiterKind::Fifo,
        2 => ArbiterKind::FixedPriority,
        3 => ArbiterKind::Tdma { slot_cycles: worst_occ + rng.gen_below(4) },
        _ => ArbiterKind::GroupedRoundRobin {
            group_size: rng.gen_range(1, num_cores as u64 + 1) as usize,
        },
    }
}

/// A random machine: 2-4 cores, bus latency 1-4, one of the five bus
/// arbiters, and (half the time) a chained memory-controller queue.
fn random_machine(rng: &mut KernelRng) -> MachineConfig {
    let num_cores = rng.gen_range(2, 5) as usize;
    let l_bus = rng.gen_range(1, 5);
    let mut cfg = MachineConfig::toy(num_cores, l_bus);
    cfg.topology.bus.arbiter = random_arbiter(rng, num_cores, l_bus);
    if rng.gen_below(2) == 0 {
        cfg.topology.mc = Some(McQueueConfig {
            service_occupancy: rng.gen_range(1, 4),
            arbiter: if rng.gen_below(2) == 0 {
                ArbiterKind::RoundRobin
            } else {
                ArbiterKind::Fifo
            },
        });
    }
    cfg
}

/// A grid-shaped workload: a finite rsk-nop on core 0 and a random
/// contender per other core (endless under fixed priority, so the
/// whole-run window stays anchored by core 0 alone).
fn random_workload(rng: &mut KernelRng, cfg: &MachineConfig) -> Vec<Program> {
    let access = |rng: &mut KernelRng| {
        if rng.gen_below(2) == 0 {
            AccessKind::Load
        } else {
            AccessKind::Store
        }
    };
    let fp = cfg.topology.bus.arbiter == ArbiterKind::FixedPriority;
    let scua = RskBuilder::new(access(rng))
        .nops(rng.gen_below(8) as usize)
        .iterations(rng.gen_range(10, 50))
        .build(cfg, CoreId::new(0));
    let mut programs = vec![scua];
    for core in 1..cfg.num_cores {
        let core = CoreId::new(core);
        if !fp && rng.gen_below(3) == 0 {
            programs.push(
                RskBuilder::new(access(rng))
                    .nops(rng.gen_below(4) as usize)
                    .iterations(rng.gen_range(10, 40))
                    .build(cfg, core),
            );
        } else {
            programs.push(rsk(access(rng), cfg, core));
        }
    }
    programs
}

/// Property 1: where the static analyzer claims a finite per-resource
/// bound, the exhaustive exact worst case exists and never exceeds it.
#[test]
fn exact_never_exceeds_a_finite_static_bound() {
    for_cases(0x40, 20, |rng| {
        let cfg = random_machine(rng);
        let programs = random_workload(rng, &cfg);
        let profiles: Vec<CoreProfile> =
            programs.iter().map(|p| profile_program(p, &cfg)).collect();
        let statics = StaticBound::analyze(&cfg, &profiles);
        for row in exact_bounds(&cfg, &profiles, &VerifyOptions::default()) {
            let Some(sb) = statics.resource(row.resource).and_then(|r| r.bound) else {
                continue;
            };
            let exact = row.exact.unwrap_or_else(|| {
                panic!(
                    "checker found no bound where statics claims {sb} at {} \
                     (arbiter {:?}, {} cores): {:?}",
                    row.resource.slug(),
                    cfg.topology.bus.arbiter,
                    cfg.num_cores,
                    row.reason,
                )
            });
            assert!(
                exact <= sb,
                "exact {exact} > static {sb} at {} (arbiter {:?}, {} cores, mc {:?})",
                row.resource.slug(),
                cfg.topology.bus.arbiter,
                cfg.num_cores,
                cfg.topology.mc,
            );
        }
    });
}

/// Property 2: the checker's maximum is constructive — every witness
/// replays on the abstract arbiter model to exactly the delay claimed.
#[test]
fn witnesses_replay_to_their_claimed_delay() {
    for_cases(0x41, 20, |rng| {
        let cfg = random_machine(rng);
        let programs = random_workload(rng, &cfg);
        let profiles: Vec<CoreProfile> =
            programs.iter().map(|p| profile_program(p, &cfg)).collect();
        for row in exact_bounds(&cfg, &profiles, &VerifyOptions::default()) {
            let Some(w) = &row.witness else { continue };
            assert_eq!(w.delay, row.exact.expect("a witness implies an exact bound"));
            assert_eq!(
                w.replay(),
                Some(w.delay),
                "witness does not reproduce its delay at {} (arbiter {:?}, {} cores)",
                row.resource.slug(),
                cfg.topology.bus.arbiter,
                cfg.num_cores,
            );
        }
    });
}

/// Property 3 (end to end): replaying a witness on the full simulator
/// never measures a per-request delay above the exact bound — the chain
/// `measured <= exact <= static` holds on every verified grid cell.
#[test]
fn witness_replay_on_the_simulator_stays_within_exact() {
    for_cases(0x42, 8, |rng| {
        let num_cores = rng.gen_range(2, 5) as usize;
        let l_bus = rng.gen_range(1, 4);
        let mut cfg = MachineConfig::toy(num_cores, l_bus);
        if rng.gen_below(2) == 0 {
            cfg.topology.mc = Some(McQueueConfig {
                service_occupancy: rng.gen_range(1, 4),
                arbiter: ArbiterKind::Fifo,
            });
        }
        let arbiter = random_arbiter(rng, num_cores, l_bus);
        let grid = CampaignGrid::new(GridScenario::Derive, cfg)
            .arbiters(vec![arbiter])
            .iterations(vec![30])
            .max_k(8);
        for cell in verify_grid(&grid, &VerifyOptions::default()) {
            assert!(cell.violations().is_empty(), "{:?}", cell.violations());
            for replay in replay_cell_witnesses(&cell, 30) {
                assert!(replay.errors.is_empty(), "{:?}", replay.errors);
                assert_eq!(replay.violation(), None, "arbiter {arbiter:?}");
            }
        }
    });
}
