//! Cross-crate validation of the workload experiments behind Fig. 6(a):
//! realistic (EEMBC-profile) workloads rarely contend, saturating rsk
//! workloads almost always do.

use rrb_analysis::Histogram;
use rrb_kernels::{random_eembc_workload, rsk, AccessKind};
use rrb_sim::{CoreId, Machine, MachineConfig};

fn contender_histogram_eembc(seed: u64) -> Histogram {
    let cfg = MachineConfig::ngmp_ref();
    let w = random_eembc_workload(&cfg, seed, 150);
    let scua = w.scua;
    let mut m = w.into_machine(&cfg).expect("machine");
    m.run().expect("run");
    Histogram::from_bins(
        m.pmc().core(scua).contender_histogram.iter().map(|(&c, &n)| (u64::from(c), n)),
    )
}

#[test]
fn eembc_workloads_mostly_find_an_idle_bus() {
    // Fig. 6(a), dark bars: "the EEMBC in core c0 finds the bus empty or
    // with one contender most of the times".
    for seed in 0..8u64 {
        let h = contender_histogram_eembc(seed);
        let low = h.count(0) + h.count(1);
        assert!(
            low as f64 / h.total() as f64 > 0.5,
            "seed {seed}: 0-or-1 contenders fraction {:.3} too low ({:?})",
            low as f64 / h.total() as f64,
            h.iter().collect::<Vec<_>>()
        );
    }
}

#[test]
fn eembc_workloads_rarely_meet_full_contention() {
    // The complementary claim: the all-contenders bin is rare, which is
    // why measuring ubd with real workloads is hopeless.
    for seed in 0..8u64 {
        let h = contender_histogram_eembc(seed);
        assert!(
            h.fraction(3) < 0.2,
            "seed {seed}: full-contention fraction {:.3} unexpectedly high",
            h.fraction(3)
        );
    }
}

#[test]
fn rsk_workload_almost_always_meets_all_contenders() {
    // Fig. 6(a), light bars: with 4 rsk "on almost every arbitration
    // round the number of contenders is Nc".
    let cfg = MachineConfig::ngmp_ref();
    let mut m = Machine::new(cfg.clone()).expect("machine");
    m.load_program(
        CoreId::new(0),
        rrb_kernels::rsk_nop(AccessKind::Load, 0, &cfg, CoreId::new(0), 1000),
    );
    for i in 1..4 {
        m.load_program(CoreId::new(i), rsk(AccessKind::Load, &cfg, CoreId::new(i)));
    }
    m.run().expect("run");
    let h = Histogram::from_bins(
        m.pmc().core(CoreId::new(0)).contender_histogram.iter().map(|(&c, &n)| (u64::from(c), n)),
    );
    assert!(h.fraction(3) > 0.95, "histogram: {:?}", h.iter().collect::<Vec<_>>());
}

#[test]
fn random_workloads_cover_distinct_kernel_mixes() {
    let cfg = MachineConfig::ngmp_ref();
    let mut distinct = std::collections::HashSet::new();
    for seed in 0..8u64 {
        let w = random_eembc_workload(&cfg, seed, 10);
        // Fingerprint the workload by its programs' first loads.
        let fp: Vec<usize> = w.programs().iter().map(|p| p.body().len()).collect();
        distinct.insert(format!("{fp:?}-{seed}"));
    }
    assert_eq!(distinct.len(), 8);
}

#[test]
fn eembc_scua_completes_under_contention() {
    // Liveness: every random workload's scua finishes (no starvation
    // under RR, which is the arbiter's fairness guarantee).
    let cfg = MachineConfig::ngmp_ref();
    for seed in [3u64, 5] {
        let w = random_eembc_workload(&cfg, seed, 100);
        let scua = w.scua;
        let mut m = w.into_machine(&cfg).expect("machine");
        let s = m.run().expect("run");
        assert!(s.core(scua).completed(), "seed {seed}");
    }
}
