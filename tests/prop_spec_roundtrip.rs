//! Property tests for the experiment-file layer: randomized
//! [`ExperimentSpec`]s — arbiters, topologies, kernel specs, grid axes —
//! must survive the JSON round-trip identically, and rendering must be
//! deterministic.
//!
//! Hand-rolled property loop over [`KernelRng`] (the workspace builds
//! offline, std-only), mirroring the style of `prop_invariants.rs`.

use rrb::campaign::GridScenario;
use rrb::json::Json;
use rrb::spec::{ExperimentSpec, GridSpec, SpecError, WorkloadCase};
use rrb::MethodologyConfig;
use rrb_kernels::{AccessKind, AutobenchKernel, KernelRng, KernelSpec};
use rrb_sim::{ArbiterKind, MachineConfig, McQueueConfig, Replacement};

fn random_access(rng: &mut KernelRng) -> AccessKind {
    if rng.gen_below(2) == 0 {
        AccessKind::Load
    } else {
        AccessKind::Store
    }
}

fn random_arbiter(rng: &mut KernelRng) -> ArbiterKind {
    match rng.gen_below(5) {
        0 => ArbiterKind::RoundRobin,
        1 => ArbiterKind::FixedPriority,
        2 => ArbiterKind::Fifo,
        3 => ArbiterKind::Tdma { slot_cycles: rng.gen_below(64) },
        _ => ArbiterKind::GroupedRoundRobin { group_size: rng.gen_below(9) as usize },
    }
}

fn random_replacement(rng: &mut KernelRng) -> Replacement {
    match rng.gen_below(3) {
        0 => Replacement::Lru,
        1 => Replacement::Fifo,
        _ => Replacement::Random,
    }
}

fn random_kernel(rng: &mut KernelRng) -> KernelSpec {
    let opt_iters = |rng: &mut KernelRng| {
        if rng.gen_below(2) == 0 {
            None
        } else {
            Some(rng.next_u64())
        }
    };
    match rng.gen_below(8) {
        0 => KernelSpec::Rsk { access: random_access(rng) },
        1 => KernelSpec::RskNop {
            access: random_access(rng),
            nops: rng.gen_below(200),
            iterations: rng.next_u64(),
        },
        2 => KernelSpec::Nop { iterations: rng.next_u64() },
        3 => {
            let all = AutobenchKernel::all();
            KernelSpec::Eembc {
                kernel: all[rng.gen_below(all.len() as u64) as usize],
                seed: rng.next_u64(),
                iterations: opt_iters(rng),
            }
        }
        4 => KernelSpec::PointerChase { lines: rng.gen_below(64), seed: rng.next_u64() },
        5 => KernelSpec::Mixed { iterations: opt_iters(rng) },
        6 => KernelSpec::Capacity { access: random_access(rng), factor: rng.gen_below(8) },
        _ => KernelSpec::L2Miss,
    }
}

/// A random machine. Round-tripping must hold for *any* field values —
/// validity is a separate concern checked by `validate()` — so the
/// fields are drawn freely, including degenerate ones.
fn random_machine(rng: &mut KernelRng) -> MachineConfig {
    let mut cfg = match rng.gen_below(4) {
        0 => MachineConfig::ngmp_ref(),
        1 => MachineConfig::ngmp_var(),
        2 => MachineConfig::ngmp_two_level(),
        _ => MachineConfig::toy(rng.gen_range(1, 6) as usize, rng.gen_range(1, 12)),
    };
    cfg.num_cores = rng.gen_below(16) as usize;
    cfg.dl1.size_bytes = rng.next_u64();
    cfg.dl1.ways = rng.gen_below(u64::from(u32::MAX)) as u32;
    cfg.dl1.latency = rng.gen_below(16);
    cfg.dl1.replacement = random_replacement(rng);
    cfg.il1.replacement = random_replacement(rng);
    cfg.l2.replacement = random_replacement(rng);
    cfg.l2.size_bytes = rng.next_u64();
    cfg.topology.bus.arbiter = random_arbiter(rng);
    cfg.topology.bus.l2_hit_occupancy = rng.next_u64();
    cfg.topology.mc = if rng.gen_below(2) == 0 {
        None
    } else {
        Some(McQueueConfig { service_occupancy: rng.next_u64(), arbiter: random_arbiter(rng) })
    };
    cfg.dram.banks = rng.gen_below(64) as u32;
    cfg.dram.t_cl = rng.gen_below(64);
    cfg.store_buffer.entries = rng.gen_below(64) as usize;
    cfg.nop_latency = rng.gen_below(8);
    cfg.max_cycles = rng.next_u64();
    cfg.record_requests = rng.gen_below(2) == 0;
    cfg.record_trace = rng.gen_below(2) == 0;
    cfg.quiescence_skip = rng.gen_below(2) == 0;
    cfg.period_skip = rng.gen_below(2) == 0;
    cfg
}

fn random_list<T>(
    rng: &mut KernelRng,
    max_len: u64,
    mut f: impl FnMut(&mut KernelRng) -> T,
) -> Vec<T> {
    (0..rng.gen_range(1, max_len)).map(|_| f(rng)).collect()
}

fn random_spec(rng: &mut KernelRng) -> ExperimentSpec {
    let grid = if rng.gen_below(4) > 0 {
        Some(GridSpec {
            scenario: match rng.gen_below(4) {
                0 => GridScenario::Derive,
                1 => GridScenario::Naive,
                2 => GridScenario::Sweep,
                _ => GridScenario::ValidateGamma,
            },
            arbiters: random_list(rng, 4, random_arbiter),
            cores: random_list(rng, 4, |r| r.gen_below(16) as usize),
            accesses: random_list(rng, 3, random_access),
            contender_accesses: random_list(rng, 3, random_access),
            iterations: random_list(rng, 4, KernelRng::next_u64),
            max_k: rng.gen_below(200) as usize,
            methodology: MethodologyConfig {
                access: random_access(rng),
                contender_access: random_access(rng),
                max_k: rng.gen_below(200) as usize,
                iterations: rng.next_u64(),
                calibration_iterations: rng.next_u64(),
                tolerance: rng.gen_below(8),
                // An exactly representable dyadic in [0, 1), so equality
                // is meaningful; shortest round-trip formatting preserves
                // every f64 anyway.
                min_bus_utilization: rng.gen_below(1 << 20) as f64 / (1 << 20) as f64,
            },
        })
    } else {
        None
    };
    let workloads = if rng.gen_below(2) == 0 {
        Vec::new()
    } else {
        random_list(rng, 4, |r| WorkloadCase {
            name: format!("case-{}", r.gen_below(1000)),
            scua: random_kernel(r),
            contenders: (0..r.gen_below(4)).map(|_| random_kernel(r)).collect(),
        })
    };
    ExperimentSpec {
        name: format!("prop-{}", rng.gen_below(u64::MAX)),
        machine: random_machine(rng),
        grid,
        workloads,
    }
}

#[test]
fn randomized_specs_round_trip_identically() {
    let mut rng = KernelRng::seed_from_u64(0x5eed_0000_0000_0001);
    for case in 0..200 {
        let spec = random_spec(&mut rng);
        let text = spec.to_text();
        let back =
            ExperimentSpec::parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        assert_eq!(back, spec, "case {case} round-trip mismatch");
        assert_eq!(back.to_text(), text, "case {case} rendering must be deterministic");
        assert_eq!(back.spec_hash(), spec.spec_hash(), "case {case} hash must be stable");

        // The compact rendering parses to the same spec too.
        let compact = spec.to_json().render_compact();
        assert_eq!(
            ExperimentSpec::from_json(&Json::parse(&compact).expect("compact parses")).expect("ok"),
            spec,
            "case {case} compact round-trip mismatch"
        );
    }
}

#[test]
fn grid_conversion_survives_the_file_format() {
    // Valid grids (the runnable subset) must convert spec → file → spec
    // → grid without losing a field.
    let mut rng = KernelRng::seed_from_u64(42);
    for _ in 0..50 {
        let grid = rrb::campaign::CampaignGrid::new(
            GridScenario::Derive,
            MachineConfig::toy(rng.gen_range(2, 5) as usize, rng.gen_range(1, 8)),
        )
        .arbiters(vec![random_arbiter(&mut rng)])
        .iterations(vec![rng.gen_range(20, 200)]);
        let spec = ExperimentSpec::from_grid("g", &grid);
        let back = ExperimentSpec::parse(&spec.to_text()).expect("parse");
        assert_eq!(back.to_grid().expect("grid section"), grid);
    }
}

#[test]
fn corrupted_documents_never_panic() {
    // Mutating bytes of a valid spec must produce Ok or a SpecError —
    // never a panic or abort (analyst files are untrusted input).
    let mut rng = KernelRng::seed_from_u64(7);
    let text = {
        let spec = random_spec(&mut rng);
        spec.to_text()
    };
    let bytes = text.as_bytes();
    for i in 0..bytes.len() {
        let mut mutated = bytes.to_vec();
        mutated[i] = mutated[i].wrapping_add(1 + (rng.gen_below(250) as u8));
        if let Ok(s) = String::from_utf8(mutated) {
            match ExperimentSpec::parse(&s) {
                Ok(_) => {}
                Err(
                    SpecError::Parse(_)
                    | SpecError::Field { .. }
                    | SpecError::Invalid(_)
                    | SpecError::File { .. },
                ) => {}
            }
        }
    }
}
