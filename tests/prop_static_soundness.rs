//! Soundness property for the static contention analyzer: for randomized
//! arbiters, topologies, and workloads, the per-resource static bound —
//! when finite — dominates every per-request delay the simulator actually
//! observes (`γ = granted - ready`, read off the per-resource PMC
//! histograms).
//!
//! This is the pin that keeps `rrb analyze` honest: the analytic models
//! in `rrb-static` (Eq. 1 for round-robin/FIFO, group rotation for
//! `grr`, slot geometry for `tdma`, response-time analysis plus the
//! whole-run window for `fp`) must never report a bound the machine can
//! exceed. Cases are drawn from the workspace's deterministic
//! [`KernelRng`], so a failure reproduces exactly.

use rrb::statics::{profile_program, CoreProfile, StaticBound};
use rrb_kernels::{rsk, AccessKind, KernelRng, RskBuilder};
use rrb_sim::{
    ArbiterKind, CoreId, Machine, MachineConfig, McQueueConfig, Program, ResourceId, ResourceKind,
};

/// Runs `body` for `cases` pseudo-random cases drawn from a fixed seed.
fn for_cases(seed: u64, cases: usize, mut body: impl FnMut(&mut KernelRng)) {
    let mut rng = KernelRng::seed_from_u64(seed);
    for _ in 0..cases {
        body(&mut rng);
    }
}

/// A random bus arbiter that cannot starve by construction (TDMA slots
/// always fit the worst occupancy — a too-short slot is *meant* to be
/// unbounded and is lint's job to reject, not this property's).
fn random_arbiter(rng: &mut KernelRng, num_cores: usize, worst_occ: u64) -> ArbiterKind {
    match rng.gen_below(5) {
        0 => ArbiterKind::RoundRobin,
        1 => ArbiterKind::Fifo,
        2 => ArbiterKind::FixedPriority,
        3 => ArbiterKind::Tdma { slot_cycles: worst_occ + rng.gen_below(4) },
        _ => ArbiterKind::GroupedRoundRobin {
            group_size: rng.gen_range(1, num_cores as u64 + 1) as usize,
        },
    }
}

/// A random machine: 2-4 cores, bus latency 1-4, one of the five bus
/// arbiters, and (half the time) a chained memory-controller queue.
fn random_machine(rng: &mut KernelRng) -> MachineConfig {
    let num_cores = rng.gen_range(2, 5) as usize;
    let l_bus = rng.gen_range(1, 5);
    let mut cfg = MachineConfig::toy(num_cores, l_bus);
    cfg.topology.bus.arbiter = random_arbiter(rng, num_cores, l_bus);
    if rng.gen_below(2) == 0 {
        cfg.topology.mc = Some(McQueueConfig {
            service_occupancy: rng.gen_range(1, 4),
            arbiter: if rng.gen_below(2) == 0 {
                ArbiterKind::RoundRobin
            } else {
                ArbiterKind::Fifo
            },
        });
    }
    cfg
}

/// The workload under test: a finite rsk-nop on core 0 (the paper's
/// software-under-analysis shape) and a random contender per other core.
/// Under fixed priority every contender is endless, so the whole-run
/// window is anchored by core 0 alone and the analysis stays finite.
fn random_workload(rng: &mut KernelRng, cfg: &MachineConfig) -> Vec<Program> {
    let access = |rng: &mut KernelRng| {
        if rng.gen_below(2) == 0 {
            AccessKind::Load
        } else {
            AccessKind::Store
        }
    };
    let fp = cfg.topology.bus.arbiter == ArbiterKind::FixedPriority;
    let scua = RskBuilder::new(access(rng))
        .nops(rng.gen_below(8) as usize)
        .iterations(rng.gen_range(10, 50))
        .build(cfg, CoreId::new(0));
    let mut programs = vec![scua];
    for core in 1..cfg.num_cores {
        let core = CoreId::new(core);
        if !fp && rng.gen_below(3) == 0 {
            programs.push(
                RskBuilder::new(access(rng))
                    .nops(rng.gen_below(4) as usize)
                    .iterations(rng.gen_range(10, 40))
                    .build(cfg, core),
            );
        } else {
            programs.push(rsk(access(rng), cfg, core));
        }
    }
    programs
}

/// The core property: a finite static per-resource bound dominates every
/// observed per-request delay at that resource, on every core.
#[test]
fn static_bound_dominates_observed_gamma() {
    for_cases(0x30, 24, |rng| {
        let cfg = random_machine(rng);
        let programs = random_workload(rng, &cfg);
        let profiles: Vec<CoreProfile> =
            programs.iter().map(|p| profile_program(p, &cfg)).collect();
        let bound = StaticBound::analyze(&cfg, &profiles);

        let mut m = Machine::new(cfg.clone()).expect("config");
        for (i, p) in programs.into_iter().enumerate() {
            m.load_program(CoreId::new(i), p);
        }
        m.run().expect("run");

        let resources = [
            (ResourceKind::Bus, ResourceId::BUS),
            (ResourceKind::MemoryController, ResourceId::MEMORY_CONTROLLER),
        ];
        for (kind, id) in resources {
            let Some(rb) = bound.resource(kind) else { continue };
            let Some(b) = rb.bound else {
                // An unbounded verdict is *allowed* to be conservative;
                // soundness only constrains finite claims.
                continue;
            };
            for core in 0..cfg.num_cores {
                if let Some(observed) = m.pmc().core(CoreId::new(core)).max_gamma_at(id) {
                    assert!(
                        observed <= b,
                        "core {core} observed gamma {observed} > static {} bound {b} \
                         (arbiter {:?}, {} cores, mc {:?})",
                        kind.slug(),
                        cfg.topology.bus.arbiter,
                        cfg.num_cores,
                        cfg.topology.mc,
                    );
                }
            }
        }
    });
}

/// Against the analytic ground truth: for round-robin (the one arbiter
/// with a closed-form Eq. 1 answer) the saturating static bound is not
/// merely sound but *exact* at every grid point.
#[test]
fn saturating_round_robin_bound_is_exactly_eq1() {
    for_cases(0x31, 32, |rng| {
        // Core counts whose L2 way bump keeps the cache geometry valid.
        let num_cores = [2usize, 3, 4, 8][rng.gen_below(4) as usize];
        let l_bus = rng.gen_range(1, 10);
        let mut cfg = MachineConfig::toy(num_cores, l_bus);
        if rng.gen_below(2) == 0 {
            cfg.topology.mc = Some(McQueueConfig {
                service_occupancy: rng.gen_range(1, 6),
                arbiter: ArbiterKind::RoundRobin,
            });
        }
        let b = StaticBound::saturating(&cfg);
        assert_eq!(b.total(), Some(cfg.ubd()), "cores={num_cores} l={l_bus}");
    });
}

/// Every non-starving arbiter must yield a *finite* machine-wide bound
/// for the grid workload shape (finite software under analysis on core
/// 0) — the "zero refused cells" guarantee `rrb analyze` advertises.
#[test]
fn grid_shaped_workloads_always_get_finite_bounds() {
    for_cases(0x32, 24, |rng| {
        let cfg = random_machine(rng);
        let programs = random_workload(rng, &cfg);
        let profiles: Vec<CoreProfile> =
            programs.iter().map(|p| profile_program(p, &cfg)).collect();
        let bound = StaticBound::analyze(&cfg, &profiles);
        assert!(
            bound.is_finite(),
            "refused: {:?} (arbiter {:?}, {} cores)",
            bound.reason(),
            cfg.topology.bus.arbiter,
            cfg.num_cores,
        );
        assert_eq!(bound.is_finite(), bound.total().is_some());
    });
}
