//! Golden-trace regression pin for the single-bus reference machine.
//!
//! These constants were captured from the pre-topology (single hard-coded
//! `Bus`) simulator. The `Topology`/`SharedResource` refactor must keep
//! `MachineConfig::ngmp_ref()` cycle-for-cycle identical, so every value
//! here — the event-stream hash, the cycle count, and the per-core
//! counters — is pinned and must never drift.
//!
//! The hash deliberately excludes any resource tag so it is insensitive
//! to fields the topology work adds to `TraceEvent`; on the single-bus
//! reference machine every event belongs to the bus anyway.

use rrb_kernels::{rsk, rsk_nop, AccessKind};
use rrb_sim::{BusOpKind, CoreId, Machine, MachineConfig, TraceEvent};

/// FNV-1a over a stream of u64 words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn op_word(kind: BusOpKind) -> u64 {
    match kind {
        BusOpKind::Load => 0,
        BusOpKind::Ifetch => 1,
        BusOpKind::Store => 2,
        BusOpKind::MissResponse => 3,
    }
}

/// Hashes the bus-event stream: every `Ready`/`Grant`/`Complete` event in
/// order, with its core, cycle, and (for grants) gamma and occupancy.
fn trace_hash(events: &[TraceEvent]) -> u64 {
    let mut h = Fnv::new();
    for ev in events {
        match *ev {
            TraceEvent::Ready { core, cycle, kind, .. } => {
                h.push(1);
                h.push(core.index() as u64);
                h.push(cycle);
                h.push(op_word(kind));
            }
            TraceEvent::Grant { core, cycle, gamma, occupancy, kind, .. } => {
                h.push(2);
                h.push(core.index() as u64);
                h.push(cycle);
                h.push(gamma);
                h.push(occupancy);
                h.push(op_word(kind));
            }
            TraceEvent::Complete { core, cycle, kind, .. } => {
                h.push(3);
                h.push(core.index() as u64);
                h.push(cycle);
                h.push(op_word(kind));
            }
        }
    }
    h.0
}

/// The contended reference workload: an rsk-nop scua against three
/// saturating rsk contenders — the paper's measurement setup.
fn contended_machine() -> Machine {
    let mut cfg = MachineConfig::ngmp_ref();
    cfg.record_trace = true;
    let mut m = Machine::new(cfg.clone()).expect("config");
    m.load_program(CoreId::new(0), rsk_nop(AccessKind::Load, 2, &cfg, CoreId::new(0), 40));
    for i in 1..4 {
        m.load_program(CoreId::new(i), rsk(AccessKind::Load, &cfg, CoreId::new(i)));
    }
    m
}

#[test]
fn ngmp_ref_contended_trace_is_pinned() {
    let mut m = contended_machine();
    let summary = m.run().expect("run");
    assert_eq!(summary.cycles, GOLDEN_CYCLES, "total cycle count drifted");
    assert_eq!(trace_hash(m.trace().events()), GOLDEN_TRACE_HASH, "bus event stream drifted");
    let scua = summary.core(CoreId::new(0));
    assert_eq!(scua.instructions, GOLDEN_SCUA_INSTRUCTIONS);
    assert_eq!(scua.bus_requests, GOLDEN_SCUA_BUS_REQUESTS);
    assert_eq!(scua.max_gamma, Some(GOLDEN_SCUA_MAX_GAMMA));
    assert_eq!(scua.total_gamma, GOLDEN_SCUA_TOTAL_GAMMA);
    assert_eq!(summary.bus_utilization.to_bits(), GOLDEN_BUS_UTILIZATION_BITS);
}

#[test]
fn ngmp_ref_isolated_execution_time_is_pinned() {
    let cfg = MachineConfig::ngmp_ref();
    let mut m = Machine::new(cfg.clone()).expect("config");
    m.load_program(CoreId::new(0), rsk_nop(AccessKind::Load, 3, &cfg, CoreId::new(0), 200));
    let summary = m.run().expect("run");
    let core = summary.core(CoreId::new(0));
    assert_eq!(core.execution_time(), Some(GOLDEN_ISOLATED_CYCLES));
    assert_eq!(core.max_gamma, Some(0), "no contenders, no contention");
}

// Captured from the pre-refactor single-bus simulator (seed + PR 1).
const GOLDEN_CYCLES: u64 = 7447;
const GOLDEN_TRACE_HASH: u64 = 0x1e16_e2ba_baaa_cac1;
const GOLDEN_SCUA_INSTRUCTIONS: u64 = 600;
const GOLDEN_SCUA_BUS_REQUESTS: u64 = 209;
const GOLDEN_SCUA_MAX_GAMMA: u64 = 26;
const GOLDEN_SCUA_TOTAL_GAMMA: u64 = 4706;
const GOLDEN_BUS_UTILIZATION_BITS: u64 = 0x3fef_1e7d_e2c7_b9df;
const GOLDEN_ISOLATED_CYCLES: u64 = 13126;

/// Prints the pinned values; run with `--nocapture` to recapture after an
/// *intended* behaviour change (and say why in the commit).
#[test]
fn print_golden_values() {
    let mut m = contended_machine();
    let summary = m.run().expect("run");
    let scua = summary.core(CoreId::new(0));
    println!("GOLDEN_CYCLES: {}", summary.cycles);
    println!("GOLDEN_TRACE_HASH: {:#x}", trace_hash(m.trace().events()));
    println!("GOLDEN_SCUA_INSTRUCTIONS: {}", scua.instructions);
    println!("GOLDEN_SCUA_BUS_REQUESTS: {}", scua.bus_requests);
    println!("GOLDEN_SCUA_MAX_GAMMA: {}", scua.max_gamma.unwrap());
    println!("GOLDEN_SCUA_TOTAL_GAMMA: {}", scua.total_gamma);
    println!("GOLDEN_BUS_UTILIZATION_BITS: {:#x}", summary.bus_utilization.to_bits());

    let cfg = MachineConfig::ngmp_ref();
    let mut iso = Machine::new(cfg.clone()).expect("config");
    iso.load_program(CoreId::new(0), rsk_nop(AccessKind::Load, 3, &cfg, CoreId::new(0), 200));
    let s = iso.run().expect("run");
    println!("GOLDEN_ISOLATED_CYCLES: {}", s.core(CoreId::new(0)).execution_time().unwrap());
}
