//! Property-based tests over the reproduction's core invariants.
//!
//! Where the integration tests check the paper's specific numbers, these
//! check the *algebra* for arbitrary parameters: Eq. 1/Eq. 2 identities,
//! period-detection round trips, histogram laws, and machine-level
//! bounds on randomly generated programs.

use proptest::prelude::*;
use rrb_analysis::gamma::{ubd_from_parameters, GammaModel};
use rrb_analysis::sawtooth::{detect_period, exact_period, ubd_candidates};
use rrb_analysis::{EtbPadding, Histogram};
use rrb_kernels::{rsk, RskBuilder};
use rrb_sim::{CoreId, Instr, Machine, MachineConfig, Program};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    // ---------- Eq. 2 algebra ----------

    /// γ(δ) is bounded by ubd and hits ubd only at δ = 0.
    #[test]
    fn gamma_bounded_by_ubd(ubd in 1u64..200, delta in 0u64..2000) {
        let g = GammaModel::new(ubd).gamma(delta);
        prop_assert!(g <= ubd);
        if delta > 0 { prop_assert!(g < ubd); }
    }

    /// γ is periodic with period ubd for δ > 0.
    #[test]
    fn gamma_periodicity(ubd in 1u64..200, delta in 1u64..1000) {
        let m = GammaModel::new(ubd);
        prop_assert_eq!(m.gamma(delta), m.gamma(delta + ubd));
    }

    /// γ(δ) + (δ mod ubd) ≡ 0 (mod ubd): waiting plus offset closes the
    /// round-robin window.
    #[test]
    fn gamma_plus_offset_is_window(ubd in 1u64..200, delta in 1u64..1000) {
        let g = GammaModel::new(ubd).gamma(delta);
        prop_assert_eq!((g + delta % ubd) % ubd, 0);
    }

    /// Eq. 1 is monotone in both parameters.
    #[test]
    fn ubd_monotone(nc in 1u64..16, lbus in 1u64..64) {
        prop_assert!(ubd_from_parameters(nc + 1, lbus) >= ubd_from_parameters(nc, lbus));
        prop_assert!(ubd_from_parameters(nc, lbus + 1) >= ubd_from_parameters(nc, lbus));
    }

    // ---------- Saw-tooth detection ----------

    /// Detection round-trips synthesis: an Eq. 2 sweep with δ_nop = 1 over
    /// ≥ 2 periods always yields exactly ubd.
    #[test]
    fn period_detection_round_trip(ubd in 2u64..80, delta0 in 1u64..80, extra in 0usize..40) {
        let len = (2 * ubd) as usize + 2 + extra;
        let series = GammaModel::new(ubd).sweep(delta0, 1, len);
        prop_assert_eq!(exact_period(&series), Some(ubd));
    }

    /// Detection is scale-invariant (slowdown = per-request γ × requests).
    #[test]
    fn period_detection_scale_invariant(ubd in 2u64..60, requests in 1u64..100_000) {
        let len = (2 * ubd + 4) as usize;
        let series: Vec<u64> = GammaModel::new(ubd)
            .sweep(1, 1, len)
            .into_iter()
            .map(|g| g * requests)
            .collect();
        let est = detect_period(&series, 0).expect("periodic series");
        prop_assert_eq!(est.period, ubd);
    }

    /// The sampled-sweep candidate set always contains the true ubd.
    #[test]
    fn candidates_contain_truth(ubd in 4u64..60, q in 1u64..6) {
        let len = (3 * ubd) as usize;
        let series = GammaModel::new(ubd).sweep(1, q, len);
        if let Some(p) = exact_period(&series) {
            let cands = ubd_candidates(p, q);
            prop_assert!(cands.contains(&ubd), "p={} q={} cands={:?}", p, q, cands);
        }
    }

    // ---------- Histogram laws ----------

    #[test]
    fn histogram_total_equals_input_len(values in prop::collection::vec(0u64..50, 0..200)) {
        let h: Histogram = values.iter().copied().collect();
        prop_assert_eq!(h.total(), values.len() as u64);
        if let Some(max) = values.iter().max() {
            prop_assert_eq!(h.max(), Some(*max));
        }
        // Quantiles are monotone.
        if !values.is_empty() {
            prop_assert!(h.quantile(0.25) <= h.quantile(0.75));
        }
    }

    #[test]
    fn histogram_merge_is_additive(a in prop::collection::vec(0u64..20, 0..50),
                                   b in prop::collection::vec(0u64..20, 0..50)) {
        let ha: Histogram = a.iter().copied().collect();
        let hb: Histogram = b.iter().copied().collect();
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.total(), ha.total() + hb.total());
        for v in 0..20u64 {
            prop_assert_eq!(merged.count(v), ha.count(v) + hb.count(v));
        }
    }

    // ---------- ETB algebra ----------

    #[test]
    fn etb_padding_laws(nr in 0u64..1_000_000, ubd_m in 0u64..1_000, truth in 0u64..1_000) {
        let p = EtbPadding::new(nr, ubd_m);
        prop_assert_eq!(p.pad(), nr * ubd_m);
        // Shortfall is zero iff the estimate covers the truth (or nr = 0).
        if ubd_m >= truth || nr == 0 {
            prop_assert_eq!(p.shortfall_against(truth), 0);
        } else {
            prop_assert!(p.shortfall_against(truth) > 0);
        }
    }
}

proptest! {
    // Machine-level properties are expensive; keep the case count low.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// For arbitrary small programs under saturating contenders, no
    /// request's contention ever exceeds Eq. 1's bound.
    #[test]
    fn no_request_exceeds_ubd(ops in prop::collection::vec(0u8..4, 1..20), iters in 5u64..40) {
        let cfg = MachineConfig::toy(4, 2);
        let layout = rrb_kernels::DataLayout::for_core(&cfg, CoreId::new(0));
        let body: Vec<Instr> = ops
            .iter()
            .enumerate()
            .map(|(i, &op)| match op {
                0 => Instr::load(layout.addr((i % 5) as u64)),
                1 => Instr::store(layout.addr((i % 5) as u64)),
                2 => Instr::Nop,
                _ => Instr::Alu { latency: 2 },
            })
            .collect();
        let mut m = Machine::new(cfg.clone()).expect("config");
        m.load_program(CoreId::new(0), Program::from_body(body, iters));
        for i in 1..4 {
            m.load_program(
                CoreId::new(i),
                rsk(rrb_kernels::AccessKind::Load, &cfg, CoreId::new(i)),
            );
        }
        m.run().expect("run");
        if let Some(max) = m.pmc().core(CoreId::new(0)).max_gamma() {
            prop_assert!(max <= cfg.ubd(), "gamma {} > ubd {}", max, cfg.ubd());
        }
    }

    /// Execution time in isolation is deterministic and contention can
    /// only increase it.
    #[test]
    fn contention_never_speeds_up_the_scua(k in 0usize..8, iters in 10u64..60) {
        let cfg = MachineConfig::toy(4, 2);
        let scua = RskBuilder::new(rrb_kernels::AccessKind::Load)
            .nops(k)
            .iterations(iters)
            .build(&cfg, CoreId::new(0));

        let mut iso = Machine::new(cfg.clone()).expect("config");
        iso.load_program(CoreId::new(0), scua.clone());
        let t_iso = iso.run().expect("run").core(CoreId::new(0)).execution_time().expect("done");

        let mut con = Machine::new(cfg.clone()).expect("config");
        con.load_program(CoreId::new(0), scua);
        for i in 1..4 {
            con.load_program(
                CoreId::new(i),
                rsk(rrb_kernels::AccessKind::Load, &cfg, CoreId::new(i)),
            );
        }
        let t_con = con.run().expect("run").core(CoreId::new(0)).execution_time().expect("done");
        prop_assert!(t_con >= t_iso, "contended {} < isolated {}", t_con, t_iso);
    }
}
