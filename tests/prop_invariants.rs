//! Property-based tests over the reproduction's core invariants.
//!
//! Where the integration tests check the paper's specific numbers, these
//! check the *algebra* for arbitrary parameters: Eq. 1/Eq. 2 identities,
//! period-detection round trips, histogram laws, and machine-level
//! bounds on randomly generated programs.
//!
//! The case generator is the workspace's own deterministic
//! [`KernelRng`] (std-only, fixed seeds), so failures reproduce exactly.

use rrb_analysis::gamma::{ubd_from_parameters, GammaModel};
use rrb_analysis::sawtooth::{detect_period, exact_period, ubd_candidates};
use rrb_analysis::{EtbPadding, Histogram};
use rrb_kernels::{rsk, KernelRng, RskBuilder};
use rrb_sim::{CoreId, Instr, Machine, MachineConfig, Program};

/// Runs `body` for `cases` pseudo-random cases drawn from a fixed seed.
fn for_cases(seed: u64, cases: usize, mut body: impl FnMut(&mut KernelRng)) {
    let mut rng = KernelRng::seed_from_u64(seed);
    for _ in 0..cases {
        body(&mut rng);
    }
}

// ---------- Eq. 2 algebra ----------

/// γ(δ) is bounded by ubd and hits ubd only at δ = 0.
#[test]
fn gamma_bounded_by_ubd() {
    for_cases(0x01, 64, |rng| {
        let ubd = rng.gen_range(1, 200);
        let delta = rng.gen_below(2000);
        let g = GammaModel::new(ubd).gamma(delta);
        assert!(g <= ubd);
        if delta > 0 {
            assert!(g < ubd, "ubd={ubd} delta={delta}");
        }
    });
}

/// γ is periodic with period ubd for δ > 0.
#[test]
fn gamma_periodicity() {
    for_cases(0x02, 64, |rng| {
        let ubd = rng.gen_range(1, 200);
        let delta = rng.gen_range(1, 1000);
        let m = GammaModel::new(ubd);
        assert_eq!(m.gamma(delta), m.gamma(delta + ubd), "ubd={ubd} delta={delta}");
    });
}

/// γ(δ) + (δ mod ubd) ≡ 0 (mod ubd): waiting plus offset closes the
/// round-robin window.
#[test]
fn gamma_plus_offset_is_window() {
    for_cases(0x03, 64, |rng| {
        let ubd = rng.gen_range(1, 200);
        let delta = rng.gen_range(1, 1000);
        let g = GammaModel::new(ubd).gamma(delta);
        assert_eq!((g + delta % ubd) % ubd, 0, "ubd={ubd} delta={delta}");
    });
}

/// Eq. 1 is monotone in both parameters.
#[test]
fn ubd_monotone() {
    for_cases(0x04, 64, |rng| {
        let nc = rng.gen_range(1, 16);
        let lbus = rng.gen_range(1, 64);
        assert!(ubd_from_parameters(nc + 1, lbus) >= ubd_from_parameters(nc, lbus));
        assert!(ubd_from_parameters(nc, lbus + 1) >= ubd_from_parameters(nc, lbus));
    });
}

// ---------- Saw-tooth detection ----------

/// Detection round-trips synthesis: an Eq. 2 sweep with δ_nop = 1 over
/// ≥ 2 periods always yields exactly ubd.
#[test]
fn period_detection_round_trip() {
    for_cases(0x05, 64, |rng| {
        let ubd = rng.gen_range(2, 80);
        let delta0 = rng.gen_range(1, 80);
        let extra = rng.gen_below(40) as usize;
        let len = (2 * ubd) as usize + 2 + extra;
        let series = GammaModel::new(ubd).sweep(delta0, 1, len);
        assert_eq!(exact_period(&series), Some(ubd), "ubd={ubd} delta0={delta0} len={len}");
    });
}

/// Detection is scale-invariant (slowdown = per-request γ × requests).
#[test]
fn period_detection_scale_invariant() {
    for_cases(0x06, 64, |rng| {
        let ubd = rng.gen_range(2, 60);
        let requests = rng.gen_range(1, 100_000);
        let len = (2 * ubd + 4) as usize;
        let series: Vec<u64> =
            GammaModel::new(ubd).sweep(1, 1, len).into_iter().map(|g| g * requests).collect();
        let est = detect_period(&series, 0).expect("periodic series");
        assert_eq!(est.period, ubd, "ubd={ubd} requests={requests}");
    });
}

/// The sampled-sweep candidate set always contains the true ubd.
#[test]
fn candidates_contain_truth() {
    for_cases(0x07, 64, |rng| {
        let ubd = rng.gen_range(4, 60);
        let q = rng.gen_range(1, 6);
        let len = (3 * ubd) as usize;
        let series = GammaModel::new(ubd).sweep(1, q, len);
        if let Some(p) = exact_period(&series) {
            let cands = ubd_candidates(p, q);
            assert!(cands.contains(&ubd), "p={p} q={q} cands={cands:?}");
        }
    });
}

// ---------- Histogram laws ----------

#[test]
fn histogram_total_equals_input_len() {
    for_cases(0x08, 64, |rng| {
        let len = rng.gen_below(200) as usize;
        let values: Vec<u64> = (0..len).map(|_| rng.gen_below(50)).collect();
        let h: Histogram = values.iter().copied().collect();
        assert_eq!(h.total(), values.len() as u64);
        if let Some(max) = values.iter().max() {
            assert_eq!(h.max(), Some(*max));
        }
        // Quantiles are monotone.
        if !values.is_empty() {
            assert!(h.quantile(0.25) <= h.quantile(0.75));
        }
    });
}

#[test]
fn histogram_merge_is_additive() {
    for_cases(0x09, 64, |rng| {
        let la = rng.gen_below(50) as usize;
        let lb = rng.gen_below(50) as usize;
        let a: Vec<u64> = (0..la).map(|_| rng.gen_below(20)).collect();
        let b: Vec<u64> = (0..lb).map(|_| rng.gen_below(20)).collect();
        let ha: Histogram = a.iter().copied().collect();
        let hb: Histogram = b.iter().copied().collect();
        let mut merged = ha.clone();
        merged.merge(&hb);
        assert_eq!(merged.total(), ha.total() + hb.total());
        for v in 0..20u64 {
            assert_eq!(merged.count(v), ha.count(v) + hb.count(v));
        }
    });
}

// ---------- ETB algebra ----------

#[test]
fn etb_padding_laws() {
    for_cases(0x0a, 64, |rng| {
        let nr = rng.gen_below(1_000_000);
        let ubd_m = rng.gen_below(1_000);
        let truth = rng.gen_below(1_000);
        let p = EtbPadding::new(nr, ubd_m);
        assert_eq!(p.pad(), nr * ubd_m);
        // Shortfall is zero iff the estimate covers the truth (or nr = 0).
        if ubd_m >= truth || nr == 0 {
            assert_eq!(p.shortfall_against(truth), 0);
        } else {
            assert!(p.shortfall_against(truth) > 0, "nr={nr} ubd_m={ubd_m} truth={truth}");
        }
    });
}

// ---------- Machine-level properties (expensive; few cases) ----------

/// For arbitrary small programs under saturating contenders, no
/// request's contention ever exceeds Eq. 1's bound.
#[test]
fn no_request_exceeds_ubd() {
    for_cases(0x0b, 12, |rng| {
        let cfg = MachineConfig::toy(4, 2);
        let layout = rrb_kernels::DataLayout::for_core(&cfg, CoreId::new(0));
        let len = rng.gen_range(1, 20) as usize;
        let iters = rng.gen_range(5, 40);
        let body: Vec<Instr> = (0..len)
            .map(|i| match rng.gen_below(4) {
                0 => Instr::load(layout.addr((i % 5) as u64)),
                1 => Instr::store(layout.addr((i % 5) as u64)),
                2 => Instr::Nop,
                _ => Instr::Alu { latency: 2 },
            })
            .collect();
        let mut m = Machine::new(cfg.clone()).expect("config");
        m.load_program(CoreId::new(0), Program::from_body(body, iters));
        for i in 1..4 {
            m.load_program(
                CoreId::new(i),
                rsk(rrb_kernels::AccessKind::Load, &cfg, CoreId::new(i)),
            );
        }
        m.run().expect("run");
        if let Some(max) = m.pmc().core(CoreId::new(0)).max_gamma() {
            assert!(max <= cfg.ubd(), "gamma {} > ubd {}", max, cfg.ubd());
        }
    });
}

/// Execution time in isolation is deterministic and contention can
/// only increase it.
#[test]
fn contention_never_speeds_up_the_scua() {
    for_cases(0x0c, 12, |rng| {
        let cfg = MachineConfig::toy(4, 2);
        let k = rng.gen_below(8) as usize;
        let iters = rng.gen_range(10, 60);
        let scua = RskBuilder::new(rrb_kernels::AccessKind::Load)
            .nops(k)
            .iterations(iters)
            .build(&cfg, CoreId::new(0));

        let mut iso = Machine::new(cfg.clone()).expect("config");
        iso.load_program(CoreId::new(0), scua.clone());
        let t_iso = iso.run().expect("run").core(CoreId::new(0)).execution_time().expect("done");

        let mut con = Machine::new(cfg.clone()).expect("config");
        con.load_program(CoreId::new(0), scua);
        for i in 1..4 {
            con.load_program(
                CoreId::new(i),
                rsk(rrb_kernels::AccessKind::Load, &cfg, CoreId::new(i)),
            );
        }
        let t_con = con.run().expect("run").core(CoreId::new(0)).execution_time().expect("done");
        assert!(t_con >= t_iso, "contended {t_con} < isolated {t_iso} (k={k} iters={iters})");
    });
}

// ---------- Campaign invariants ----------

/// Parallel plan execution is pointwise equal to serial for arbitrary
/// mixed plans — the determinism contract behind `--jobs`.
#[test]
fn campaign_execution_is_schedule_invariant() {
    use rrb::campaign::RunSpec;
    use rrb::executor::Executor;
    let cfg = MachineConfig::toy(4, 2);
    let mut rng = KernelRng::seed_from_u64(0x0d);
    let specs: Vec<RunSpec> = (0..10)
        .map(|i| {
            let k = rng.gen_below(6) as usize;
            let iters = rng.gen_range(10, 50);
            let scua = RskBuilder::new(rrb_kernels::AccessKind::Load)
                .nops(k)
                .iterations(iters)
                .build(&cfg, CoreId::new(0));
            if rng.gen_below(2) == 0 {
                RunSpec::isolated(format!("i{i}"), cfg.clone(), scua)
            } else {
                RunSpec::contended_rsk(
                    format!("c{i}"),
                    cfg.clone(),
                    scua,
                    rrb_kernels::AccessKind::Load,
                )
            }
        })
        .collect();
    let serial = Executor::new().execute(&specs).0;
    for jobs in [2usize, 3, 8] {
        assert_eq!(Executor::new().jobs(jobs).execute(&specs).0, serial, "jobs={jobs}");
    }
}

// ---------- Arbiter invariants ----------

use rrb_sim::bus::{Arbiter, FifoArbiter, RequestView, TdmaArbiter};
use rrb_sim::{ArbiterKind, BusConfig, BusOpKind, SharedResource};

/// A pseudo-random request view: each requester is independently absent,
/// ready in the past, or ready in the future.
fn random_view(rng: &mut KernelRng, n: usize, now: u64) -> Vec<Option<RequestView>> {
    (0..n)
        .map(|_| match rng.gen_below(3) {
            0 => None,
            1 => Some(RequestView { ready: now.saturating_sub(rng.gen_below(50)), occupancy: 2 }),
            _ => Some(RequestView { ready: now + 1 + rng.gen_below(50), occupancy: 2 }),
        })
        .collect()
}

/// TDMA only ever grants the owner of the current slot, and only when the
/// transaction fits in the slot's remainder.
#[test]
fn tdma_grants_only_inside_the_owners_slot() {
    for_cases(0x20, 200, |rng| {
        let n = rng.gen_range(2, 6) as usize;
        let slot = rng.gen_range(2, 12);
        let now = rng.gen_below(10_000);
        let mut view = random_view(rng, n, now);
        // Randomise occupancies so slot-fitting is exercised too.
        for v in view.iter_mut().flatten() {
            v.occupancy = rng.gen_range(1, 15);
        }
        let mut a = TdmaArbiter::new(n, slot);
        if let Some(granted) = a.select(&view, now) {
            let owner = ((now / slot) as usize) % n;
            assert_eq!(granted, owner, "TDMA granted a non-owner (now={now} slot={slot})");
            let req = view[granted].expect("granted an empty slot");
            assert!(req.ready <= now, "granted a future request");
            assert!(
                req.occupancy <= slot - (now % slot),
                "transaction overruns the slot (now={now} slot={slot})"
            );
        }
    });
}

/// FIFO grants strictly in ready-time order (ties to the lower index).
/// The oracle is stated independently of the implementation: a grant
/// must exist exactly when some request is ready, the granted request
/// must itself be ready, and no other ready request may precede it in
/// (ready, index) order.
#[test]
fn fifo_grants_in_ready_time_order() {
    for_cases(0x21, 200, |rng| {
        let n = rng.gen_range(2, 8) as usize;
        let now = rng.gen_below(10_000);
        let view = random_view(rng, n, now);
        let mut a = FifoArbiter;
        let any_ready = view.iter().flatten().any(|r| r.ready <= now);
        match a.select(&view, now) {
            None => assert!(!any_ready, "FIFO left a ready request waiting"),
            Some(g) => {
                let granted = view[g].expect("granted an empty slot");
                assert!(granted.ready <= now, "granted a future request");
                for (i, req) in view.iter().enumerate() {
                    if i == g {
                        continue;
                    }
                    if let Some(r) = req {
                        if r.ready <= now {
                            assert!(
                                r.ready > granted.ready || (r.ready == granted.ready && i > g),
                                "request {i} (ready {}) precedes the grant {g} (ready {})",
                                r.ready,
                                granted.ready
                            );
                        }
                    }
                }
            }
        }
    });
}

/// Under saturation, a grouped-RR requester's per-request delay is
/// bounded by the group-count UBD: consecutive services of one member
/// are at most `max_group_size * groups` grants apart, so
/// `gamma <= (max_group_size * groups - 1) * l`.
#[test]
fn grouped_rr_delay_bounded_by_group_count_ubd() {
    for_cases(0x22, 8, |rng| {
        let num_cores = rng.gen_range(3, 7) as usize;
        let group_size = rng.gen_range(1, num_cores as u64) as usize;
        let l = rng.gen_range(1, 5);
        let cfg = BusConfig {
            l2_hit_occupancy: l,
            transfer_occupancy: l,
            store_occupancy: l,
            arbiter: ArbiterKind::GroupedRoundRobin { group_size },
        };
        let mut bus = SharedResource::bus(cfg, num_cores);
        for i in 0..num_cores {
            bus.post(CoreId::new(i), BusOpKind::Load, 0, 0);
        }
        let groups = num_cores.div_ceil(group_size);
        let bound = (group_size as u64 * groups as u64 - 1) * l;
        for now in 0..3_000u64 {
            if let Some(done) = bus.take_completed(now) {
                assert!(
                    done.gamma() <= bound,
                    "gamma {} > bound {bound} (cores={num_cores} group={group_size} l={l})",
                    done.gamma()
                );
                bus.post(done.core, BusOpKind::Load, 0, now);
            }
            bus.try_grant(now, |_, _| (l, Some(true)));
        }
    });
}
