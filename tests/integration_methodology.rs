//! End-to-end validation of the rsk-nop methodology (§4–§5.3) on the
//! paper's two architectures — the headline result of the reproduction.
//!
//! These tests run the full pipeline (δ_nop calibration → k sweep →
//! period detection → disambiguation) on the NGMP-like machines and
//! assert the paper's numbers: `ubd_m = ubd = 27` on both `ref` and
//! `var`, while the naive estimators stay at 26 / 23.

use rrb::methodology::{calibrate_delta_nop, derive_ubd, MethodologyConfig, MethodologyError};
use rrb::naive::naive_rsk_vs_rsk;
use rrb_analysis::EtbPadding;
use rrb_kernels::AccessKind;
use rrb_sim::MachineConfig;

/// Shared sweep settings: paper-shaped but cheap enough for CI.
fn sweep() -> MethodologyConfig {
    let mut m = MethodologyConfig::paper();
    m.iterations = 200;
    m.max_k = 70; // > 2.5 periods of 27
    m
}

#[test]
fn methodology_recovers_ubd_on_reference_architecture() {
    let cfg = MachineConfig::ngmp_ref();
    let d = derive_ubd(&cfg, &sweep()).expect("derivation");
    assert_eq!(d.ubd_m, 27, "Fig. 7(a): period 27 on ref");
    assert_eq!(d.delta_nop, 1);
    assert_eq!(d.k_period, 27);
    assert!(d.min_bus_utilization > 0.95, "§4.3 confidence: saturation");
}

#[test]
fn methodology_recovers_ubd_on_variant_architecture() {
    // The variant's injection time is 4, not 1 — the saw-tooth is offset
    // but its period is unchanged (§5.3: "the period of the saw-tooth
    // shape is the same for both variant architectures").
    let cfg = MachineConfig::ngmp_var();
    let d = derive_ubd(&cfg, &sweep()).expect("derivation");
    assert_eq!(d.ubd_m, 27, "Fig. 7(a): period 27 on var too");
    assert_eq!(d.k_period, 27);
}

#[test]
fn methodology_beats_naive_on_both_architectures() {
    for cfg in [MachineConfig::ngmp_ref(), MachineConfig::ngmp_var()] {
        let naive = naive_rsk_vs_rsk(&cfg, AccessKind::Load, 300).expect("naive");
        let derived = derive_ubd(&cfg, &sweep()).expect("derivation");
        assert!(
            naive.ubd_m() < derived.ubd_m,
            "naive {} must undercut methodology {}",
            naive.ubd_m(),
            derived.ubd_m
        );
        assert_eq!(derived.ubd_m, cfg.ubd(), "methodology is exact");
    }
}

#[test]
fn naive_estimates_match_figure_6b() {
    let r = naive_rsk_vs_rsk(&MachineConfig::ngmp_ref(), AccessKind::Load, 400).expect("ref");
    assert_eq!(r.ubd_m_max_gamma, 26);
    let v = naive_rsk_vs_rsk(&MachineConfig::ngmp_var(), AccessKind::Load, 400).expect("var");
    assert_eq!(v.ubd_m_max_gamma, 23);
}

#[test]
fn delta_nop_calibration_is_exact_on_both_architectures() {
    for cfg in [MachineConfig::ngmp_ref(), MachineConfig::ngmp_var()] {
        assert_eq!(calibrate_delta_nop(&cfg, 20).expect("calibration"), 1);
    }
}

#[test]
fn methodology_handles_slow_nops_dividing_ubd() {
    // §4.2's "unlikely case δ_nop > 1": δ_nop = 3 divides ubd = 27, so
    // the k-space period collapses to 27 / gcd(3, 27) = 9. Inverting the
    // sampling with the calibrated δ_nop recovers the truth.
    let mut cfg = MachineConfig::ngmp_ref();
    cfg.nop_latency = 3;
    let d = derive_ubd(&cfg, &sweep()).expect("derivation");
    assert_eq!(d.delta_nop, 3);
    assert_eq!(d.k_period, 9, "sampled period = 27 / gcd(3, 27)");
    assert_eq!(d.ubd_m, 27, "inversion lands on the truth");
}

#[test]
fn methodology_handles_slow_nops_coprime_to_ubd() {
    // δ_nop = 2 is coprime to 27: the apparent period stays 27, but the
    // candidate set {27, 54} is genuinely ambiguous until the observed
    // maximum contention discards the impossible value.
    let mut cfg = MachineConfig::ngmp_ref();
    cfg.nop_latency = 2;
    let d = derive_ubd(&cfg, &sweep()).expect("derivation");
    assert_eq!(d.delta_nop, 2);
    assert_eq!(d.k_period, 27);
    assert!(d.candidates.len() > 1, "sampling is genuinely ambiguous: {:?}", d.candidates);
    assert_eq!(d.ubd_m, 27, "disambiguation still lands on the truth");
}

#[test]
fn etb_padding_from_derivation_is_sound() {
    // §4.3: pad = nr x ubd_m bounds any contended run.
    use rrb::experiment::{run_contended, run_isolated};
    use rrb_kernels::{rsk, rsk_nop};
    use rrb_sim::CoreId;

    let cfg = MachineConfig::ngmp_ref();
    let d = derive_ubd(&cfg, &sweep()).expect("derivation");
    let scua = rsk_nop(AccessKind::Load, 2, &cfg, CoreId::new(0), 300);
    let isolated = run_isolated(&cfg, scua.clone()).expect("isolated");
    let etb = EtbPadding::new(isolated.bus_requests, d.ubd_m).etb(isolated.execution_time);
    let contended =
        run_contended(&cfg, scua, |c| rsk(AccessKind::Load, &cfg, c)).expect("contended");
    assert!(
        contended.execution_time <= etb,
        "contended {} must fit under ETB {etb}",
        contended.execution_time
    );
}

#[test]
fn etb_padding_from_naive_estimate_is_unsound_for_stores() {
    // The flip side: pad with the naive 26 and a store-heavy scua (whose
    // buffered requests really suffer 27) can exceed the bound's margin
    // per request. We check the shortfall arithmetic, which is the
    // paper's soundness argument in miniature.
    let cfg = MachineConfig::ngmp_ref();
    let naive = naive_rsk_vs_rsk(&cfg, AccessKind::Load, 300).expect("naive");
    let pad = EtbPadding::new(10_000, naive.ubd_m_max_gamma);
    assert!(pad.shortfall_against(cfg.ubd()) >= 10_000);
}

#[test]
fn non_round_robin_arbiters_do_not_mimic_rr() {
    // §4.3: knowing that the arbiter *is* round-robin is an input to the
    // methodology. This test documents why: under fixed priority the
    // highest-priority scua still sees a periodic slowdown — but its
    // period is one bus occupancy (the residual wait for the in-flight
    // transaction), not the RR window, so blindly trusting the output on
    // a non-RR bus yields a very different (here: much smaller) number.
    // Under TDMA the methodology refuses outright.
    use rrb_sim::ArbiterKind;

    let mut fp = MachineConfig::ngmp_ref();
    fp.topology.bus.arbiter = ArbiterKind::FixedPriority;
    match derive_ubd(&fp, &sweep()) {
        Ok(d) => assert_eq!(
            d.ubd_m, 9,
            "highest-priority core's tooth is one l_bus occupancy, not the RR ubd"
        ),
        Err(MethodologyError::NoPeriod { .. }) => {}
        Err(e) => panic!("unexpected error: {e}"),
    }

    let mut tdma = MachineConfig::ngmp_ref();
    tdma.topology.bus.arbiter = ArbiterKind::Tdma { slot_cycles: 12 };
    match derive_ubd(&tdma, &sweep()) {
        Err(_) => {}
        Ok(d) => panic!("TDMA bus unexpectedly yielded ubd_m {}", d.ubd_m),
    }
}
