//! Ablations over the design space: core counts, bus latencies, arbiter
//! policies, cache replacement, and store-buffer depth. These pin down
//! that the methodology's success is a property of round-robin
//! arbitration (Eq. 1), not an artefact of one configuration.

use rrb::methodology::{derive_ubd, MethodologyConfig};
use rrb_kernels::{rsk, rsk_nop, AccessKind};
use rrb_sim::{ArbiterKind, CoreId, Machine, MachineConfig, Replacement};

fn fast(max_k: usize) -> MethodologyConfig {
    let mut m = MethodologyConfig::fast();
    m.max_k = max_k;
    m
}

#[test]
fn ubd_scales_with_core_count() {
    // Eq. 1: ubd = (Nc - 1) * l_bus, recovered blind for Nc ∈ {2, 3, 4}.
    // On the 2-core machine a single load contender cannot saturate the
    // bus (its injection gap leaves idle cycles), so the methodology is
    // run with store contenders, which inject back to back (§5.3).
    for nc in 2..=4usize {
        let cfg = MachineConfig::toy(nc, 3);
        let expected = (nc as u64 - 1) * 3;
        let mut mcfg = fast((expected as usize) * 3);
        if nc == 2 {
            mcfg.contender_access = AccessKind::Store;
        }
        let d = derive_ubd(&cfg, &mcfg).expect("derivation");
        assert_eq!(d.ubd_m, expected, "Nc = {nc}");
    }
}

#[test]
fn two_core_load_contender_fails_the_confidence_check() {
    // The §4.3 confidence element at work: one load contender leaves the
    // bus under-utilised, and the methodology must refuse rather than
    // derive a bound from a non-synchronised bus.
    use rrb::methodology::MethodologyError;
    let cfg = MachineConfig::toy(2, 3);
    match derive_ubd(&cfg, &fast(20)) {
        Err(MethodologyError::LowBusUtilization { observed, .. }) => {
            assert!(observed < 0.9, "observed {observed}");
        }
        other => panic!("expected the utilisation check to fire, got {other:?}"),
    }
}

#[test]
fn ubd_scales_with_bus_latency() {
    for l_bus in [2u64, 5, 9] {
        let cfg = MachineConfig::toy(4, l_bus);
        let expected = 3 * l_bus;
        let d = derive_ubd(&cfg, &fast((expected as usize) * 3)).expect("derivation");
        assert_eq!(d.ubd_m, expected, "l_bus = {l_bus}");
    }
}

#[test]
fn fifo_replacement_rsk_still_thrashes() {
    // §2: the W+1 construction works for LRU *and* FIFO replacement.
    let mut cfg = MachineConfig::ngmp_ref();
    cfg.dl1.replacement = Replacement::Fifo;
    let mut m = Machine::new(cfg.clone()).expect("config");
    m.load_program(CoreId::new(0), rsk_nop(AccessKind::Load, 0, &cfg, CoreId::new(0), 200));
    m.run().expect("run");
    assert_eq!(m.dl1_stats(CoreId::new(0)).hits, 0);
}

#[test]
fn methodology_survives_fifo_caches() {
    let mut cfg = MachineConfig::toy(4, 2);
    cfg.dl1.replacement = Replacement::Fifo;
    let d = derive_ubd(&cfg, &fast(20)).expect("derivation");
    assert_eq!(d.ubd_m, 6);
}

#[test]
fn tdma_bus_shows_no_sawtooth() {
    // Under TDMA each core's slot isolates it: slowdown vs k carries no
    // round-robin tooth. The methodology must refuse rather than report
    // a bogus ubd — either no period, or a failed utilisation check
    // (TDMA is not work-conserving).
    let mut cfg = MachineConfig::toy(4, 2);
    cfg.topology.bus.arbiter = ArbiterKind::Tdma { slot_cycles: 4 };
    match derive_ubd(&cfg, &fast(20)) {
        Err(_) => {}
        Ok(d) => {
            // If a period exists at all it must be the TDMA frame, not
            // the RR ubd — flag it as a failure of this ablation.
            panic!("TDMA bus unexpectedly produced ubd_m = {}", d.ubd_m);
        }
    }
}

#[test]
fn fixed_priority_starves_low_priority_contender_math() {
    // Under fixed priority the highest-priority core never waits: its
    // max γ is bounded by one in-flight transaction, far below RR's ubd.
    let mut cfg = MachineConfig::toy(4, 2);
    cfg.topology.bus.arbiter = ArbiterKind::FixedPriority;
    let mut m = Machine::new(cfg.clone()).expect("config");
    m.load_program(CoreId::new(0), rsk_nop(AccessKind::Load, 0, &cfg, CoreId::new(0), 300));
    for i in 1..4 {
        m.load_program(CoreId::new(i), rsk(AccessKind::Load, &cfg, CoreId::new(i)));
    }
    m.run().expect("run");
    let max = m.pmc().core(CoreId::new(0)).max_gamma().expect("requests");
    assert!(max < cfg.ubd(), "highest-priority core saw gamma {max}");
}

#[test]
fn fifo_arbiter_breaks_the_synchrony_tooth() {
    // Global-FIFO arbitration serves in arrival order: γ depends on queue
    // depth, not on RR alignment, so the γ(δ) saw-tooth (and with it the
    // methodology's signal) disappears or degenerates.
    let mut cfg = MachineConfig::toy(4, 2);
    cfg.topology.bus.arbiter = ArbiterKind::Fifo;
    // Sample mode-γ at two k values one RR-period apart; under RR they
    // would match while differing in between — under FIFO the whole
    // series is flat (every request waits the full queue).
    let gamma_at = |k: usize| {
        let mut m = Machine::new(cfg.clone()).expect("config");
        m.load_program(CoreId::new(0), rsk_nop(AccessKind::Load, k, &cfg, CoreId::new(0), 300));
        for i in 1..4 {
            m.load_program(CoreId::new(i), rsk(AccessKind::Load, &cfg, CoreId::new(i)));
        }
        m.run().expect("run");
        m.pmc().core(CoreId::new(0)).mode_gamma().expect("requests").0
    };
    let teeth: Vec<u64> = (0..8).map(gamma_at).collect();
    let rr_prediction: Vec<u64> =
        (0..8).map(|k| rrb_analysis::GammaModel::new(6).gamma(1 + k as u64)).collect();
    assert_ne!(teeth, rr_prediction, "FIFO must not mimic the RR tooth");
}

#[test]
fn deeper_store_buffer_still_reaches_ubd() {
    for entries in [2usize, 8, 16] {
        let mut cfg = MachineConfig::ngmp_ref();
        cfg.store_buffer.entries = entries;
        let mut m = Machine::new(cfg.clone()).expect("config");
        m.load_program(CoreId::new(0), rsk_nop(AccessKind::Store, 0, &cfg, CoreId::new(0), 300));
        for i in 1..4 {
            m.load_program(CoreId::new(i), rsk(AccessKind::Load, &cfg, CoreId::new(i)));
        }
        m.run().expect("run");
        let (mode, _) = m.pmc().core(CoreId::new(0)).mode_gamma().expect("requests");
        assert_eq!(mode, 27, "store buffer depth {entries}");
    }
}

#[test]
fn two_core_machine_has_single_contender_ubd() {
    // Degenerate but legal: Nc = 2 means ubd = l_bus — reachable with a
    // store contender that keeps the bus permanently busy.
    let cfg = MachineConfig::toy(2, 5);
    assert_eq!(cfg.ubd(), 5);
    let mut mcfg = fast(18);
    mcfg.contender_access = AccessKind::Store;
    let d = derive_ubd(&cfg, &mcfg).expect("derivation");
    assert_eq!(d.ubd_m, 5);
}
