//! End-to-end validation of the `Scenario`/`Campaign` execution API:
//! parallel determinism, the shared-baseline cache, and per-run error
//! containment — the contracts every batch consumer (CLI, bench bins,
//! future scenarios) relies on.

use rrb::campaign::{Campaign, CampaignGrid, GridScenario};
use rrb::methodology::{derive_ubd, MethodologyConfig, UbdScenario};
use rrb::scenario::{RunOutcome, Scenario};
use rrb_kernels::AccessKind;
use rrb_sim::{ArbiterKind, MachineConfig};

fn toy() -> MachineConfig {
    MachineConfig::toy(4, 2)
}

/// A small but non-trivial grid: 4 cells, mixed contender accesses, so
/// the plan contains both shared and distinct runs.
fn four_way_grid() -> CampaignGrid {
    CampaignGrid::new(GridScenario::Derive, toy())
        .contender_accesses(vec![AccessKind::Load, AccessKind::Store])
        .iterations(vec![60, 80])
        .max_k(14)
}

#[test]
fn parallel_campaign_output_is_byte_identical_to_serial() {
    let grid = four_way_grid();
    let serial = Campaign::builder().grid(&grid).jobs(1).build().run();
    let parallel = Campaign::builder().grid(&grid).jobs(8).build().run();

    // The strongest form of the determinism contract: the serialised
    // payloads match byte for byte, for both formats.
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.records, parallel.records);
    assert_eq!(serial.reports, parallel.reports);

    // And the campaign actually derived the hidden ubd = 6 in each cell.
    assert_eq!(serial.reports.len(), 4);
    for report in &serial.reports {
        assert_eq!(report.metric_u64("ubd_m"), Some(6), "{report:?}");
    }
}

#[test]
fn baseline_cache_returns_the_same_numbers_as_uncached_runs() {
    let grid = four_way_grid();
    let cached = Campaign::builder().grid(&grid).dedup(true).build().run();
    let uncached = Campaign::builder().grid(&grid).dedup(false).build().run();

    // The cache must be invisible in the results...
    assert_eq!(cached.to_json(), uncached.to_json());
    assert_eq!(cached.to_csv(), uncached.to_csv());

    // ...and it must actually be working: the two contender accesses
    // share every isolated baseline and the calibration run.
    assert_eq!(uncached.stats.cache_hits, 0);
    assert_eq!(uncached.stats.executed_runs, uncached.stats.planned_runs);
    assert!(
        cached.stats.cache_hits > 0,
        "grid with shared baselines must hit the cache: {:?}",
        cached.stats
    );
    assert_eq!(cached.stats.planned_runs, cached.stats.executed_runs + cached.stats.cache_hits);
}

#[test]
fn invalid_grid_entry_surfaces_as_error_records_not_a_poisoned_campaign() {
    // A TDMA slot of 4 cycles cannot fit the 9-cycle NGMP transaction:
    // that cell's plan is rejected at validation. The round-robin cell
    // must be entirely unaffected.
    let grid = CampaignGrid::new(GridScenario::Derive, MachineConfig::ngmp_ref())
        .arbiters(vec![ArbiterKind::RoundRobin, ArbiterKind::Tdma { slot_cycles: 4 }])
        .iterations(vec![200])
        .max_k(70);
    let result = Campaign::builder().grid(&grid).jobs(4).build().run();

    assert_eq!(result.reports.len(), 2);
    let rr = &result.reports[0];
    let tdma = &result.reports[1];
    assert!(rr.is_ok(), "round-robin cell must succeed: {rr:?}");
    assert_eq!(rr.metric_u64("ubd_m"), Some(27), "the paper's headline number");
    assert!(!tdma.is_ok(), "TDMA cell must fail");
    assert!(tdma.error.as_deref().unwrap_or("").contains("TDMA slot"));

    // The failure is recorded, flagged, and contained.
    let error_records: Vec<_> = result.records.iter().filter(|r| !r.is_ok()).collect();
    assert_eq!(error_records.len(), 1);
    assert_eq!(error_records[0].scenario, tdma.scenario);
    assert!(result.stats.failed_runs > 0);
}

#[test]
fn runtime_run_failures_are_recorded_per_run() {
    // A valid configuration whose cycle budget is far too small: every
    // run of the scenario fails *at execution time*, and each failure
    // becomes its own error record instead of aborting the campaign.
    let mut starved = toy();
    starved.max_cycles = 50;
    let grid = CampaignGrid::new(GridScenario::Naive, toy());
    let campaign = Campaign::builder()
        .scenario(
            rrb::naive::NaiveScenario::new(
                starved,
                rrb_kernels::rsk_nop(AccessKind::Load, 0, &toy(), rrb_sim::CoreId::new(0), 1000),
                AccessKind::Load,
            )
            .named("starved"),
        )
        .grid(&grid)
        .build();
    let result = campaign.run();

    assert_eq!(result.reports.len(), 2);
    assert!(!result.reports[0].is_ok(), "starved scenario must fail");
    assert!(result.reports[1].is_ok(), "healthy scenario must be unaffected");
    let starved_records: Vec<_> =
        result.records.iter().filter(|r| r.scenario == "starved").collect();
    assert_eq!(starved_records.len(), 2, "one record per planned run");
    for record in starved_records {
        assert!(!record.is_ok());
        assert!(record.error.as_deref().unwrap_or("").contains("cycle budget"));
    }
}

#[test]
fn campaign_derivation_matches_direct_derive_ubd() {
    // The Scenario path and the classic free-function path must agree
    // exactly: same plan, same runs, same algebra.
    let cfg = toy();
    let mcfg = MethodologyConfig::fast();
    let direct = derive_ubd(&cfg, &mcfg).expect("direct derivation");

    let scenario = UbdScenario::new(cfg, mcfg).named("via-campaign");
    let specs = scenario.plan().expect("plan");
    let outcomes: Vec<RunOutcome> = specs
        .iter()
        .zip(rrb::executor::Executor::new().jobs(8).execute(&specs).0)
        .map(|(spec, result)| RunOutcome { label: spec.label.clone(), result })
        .collect();
    let via_campaign = scenario.derivation(&outcomes).expect("campaign derivation");

    assert_eq!(direct, via_campaign);
}

#[test]
fn campaign_json_is_stable_across_repeated_runs() {
    // Same campaign, run twice: the simulator is deterministic, so the
    // payload must not drift (no timestamps, no iteration-order leaks).
    let grid = CampaignGrid::new(GridScenario::Sweep, toy()).max_k(13).iterations(vec![60]);
    let a = Campaign::builder().grid(&grid).jobs(2).build().run();
    let b = Campaign::builder().grid(&grid).jobs(3).build().run();
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.reports[0].metric_u64("period"), Some(6));
}

#[test]
fn two_level_campaign_reports_contributions_that_sum() {
    // Acceptance: a campaign on a bus+mc topology must emit per-resource
    // UBD contributions that sum to the reported total.
    let mut base = toy();
    base.topology.mc =
        Some(rrb_sim::McQueueConfig { service_occupancy: 2, arbiter: ArbiterKind::Fifo });
    let grid = CampaignGrid::new(GridScenario::Derive, base).iterations(vec![60]).max_k(14);
    let result = Campaign::builder().grid(&grid).build().run();
    assert_eq!(result.reports.len(), 1);
    let report = &result.reports[0];
    assert!(report.is_ok(), "{report:?}");
    assert!(report.scenario.ends_with("/bus+mc:fifo:2"), "{}", report.scenario);
    let bus = report.metric_u64("ubd_bus").expect("bus contribution");
    let mc = report.metric_u64("ubd_mc").expect("mc contribution");
    let total = report.metric_u64("ubd_total").expect("total");
    assert_eq!(bus + mc, total, "contributions must sum to the total");
    assert_eq!(bus, 6, "the saw-tooth still recovers the bus bound");
    assert_eq!(report.metric_u64("ubd_m"), Some(6));
    // The flat records expose the controller-queue delays too.
    let header = result.to_csv().lines().next().expect("header").to_string();
    assert!(header.ends_with("max_gamma_mc"), "{header}");
    assert!(
        result.records.iter().any(|r| r.max_gamma_mc.is_some()),
        "contended runs must record controller-queue gammas"
    );
}

#[test]
fn single_bus_derivation_has_one_contribution() {
    let d = derive_ubd(&toy(), &MethodologyConfig::fast()).expect("derivation");
    assert_eq!(d.resource_contributions.len(), 1);
    assert_eq!(d.resource_contributions[0].resource, "bus");
    assert_eq!(d.total_ubd_m(), d.ubd_m);
}
