//! Equivalence property for the event-driven simulation core.
//!
//! `MachineConfig::quiescence_skip` lets `run`/`run_for` jump `now`
//! straight to the next component event horizon instead of stepping
//! every quiescent cycle. The contract is that the two modes are
//! **cycle-identical**: same trace event stream, same `RunSummary`,
//! same per-resource statistics, same per-core PMC state — for every
//! arbiter, topology, and workload. These tests drive randomized pairs
//! of machines (skip on / skip off) from fixed seeds through the same
//! configurations and programs and compare everything observable.
//!
//! The case generator is the workspace's own deterministic
//! [`KernelRng`] (std-only, fixed seeds), so failures reproduce exactly.

use rrb_kernels::{rsk_l2_miss, KernelRng};
use rrb_sim::{
    ArbiterKind, CoreId, Instr, Machine, MachineConfig, McQueueConfig, Program, ResourceId,
};

/// Draws one of the five arbitration policies; TDMA slots always fit the
/// longest transaction of `cfg` (otherwise validation rejects them).
fn random_arbiter(rng: &mut KernelRng, worst_occupancy: u64) -> ArbiterKind {
    match rng.gen_below(5) {
        0 => ArbiterKind::RoundRobin,
        1 => ArbiterKind::FixedPriority,
        2 => ArbiterKind::Fifo,
        3 => ArbiterKind::Tdma { slot_cycles: worst_occupancy + rng.gen_below(12) },
        _ => ArbiterKind::GroupedRoundRobin { group_size: 1 + rng.gen_below(3) as usize },
    }
}

/// A random machine over the reference substrate: 2–4 cores, any bus
/// arbiter, optionally a chained memory-controller queue.
fn random_config(rng: &mut KernelRng) -> MachineConfig {
    let mut cfg = match rng.gen_below(3) {
        0 => MachineConfig::ngmp_ref(),
        1 => MachineConfig::ngmp_var(),
        _ => MachineConfig::toy(4, 1 + rng.gen_below(6)),
    };
    cfg.num_cores = 2 + rng.gen_below(3) as usize;
    let worst_bus = cfg
        .topology
        .bus
        .l2_hit_occupancy
        .max(cfg.topology.bus.transfer_occupancy)
        .max(cfg.topology.bus.store_occupancy);
    cfg.topology.bus.arbiter = random_arbiter(rng, worst_bus);
    if rng.gen_below(2) == 1 {
        let service_occupancy = 2 + rng.gen_below(8);
        cfg.topology.mc = Some(McQueueConfig {
            service_occupancy,
            arbiter: random_arbiter(rng, service_occupancy),
        });
    }
    cfg.store_buffer.entries = 1 + rng.gen_below(8) as usize;
    cfg.record_requests = true;
    cfg.record_trace = true;
    // Starvation-prone draws (fixed priority or TDMA against endless
    // contenders) are legitimate cases — both modes must agree on the
    // budget error too — but the per-cycle arm must stay affordable.
    cfg.max_cycles = 150_000;
    cfg.validate().expect("generated config must validate");
    cfg
}

/// A random program body mixing DL1-thrashing (L2-hitting) loads,
/// L2-missing loads, stores, nops, and ALU ops, in per-core address
/// regions.
fn random_body(rng: &mut KernelRng, core: usize) -> Vec<Instr> {
    let mut body = Vec::new();
    let len = 3 + rng.gen_below(10);
    for slot in 0..len {
        match rng.gen_below(6) {
            // Same-set DL1 thrash line: misses DL1, hits L2 once warm.
            0 | 1 => body.push(Instr::load(32 * 1024 + (slot % 6) * 4096)),
            // Huge-stride line: misses DL1 and the L2 partition.
            2 => body.push(Instr::load(
                0x4000_0000 + 0x0400_0000 * core as u64 + rng.gen_below(64) * 4096,
            )),
            3 => body.push(Instr::store(0x0009_0000 + rng.gen_below(16) * 32)),
            4 => body.push(Instr::Nop),
            _ => body.push(Instr::Alu { latency: 1 + rng.gen_below(4) }),
        }
    }
    body
}

/// Loads the same random workload onto both machines: core 0 runs a
/// finite scua, the rest run endless or finite contenders.
fn load_random_workload(rng: &mut KernelRng, pair: [&mut Machine; 2]) {
    let num_cores = pair[0].config().num_cores;
    let mut programs = Vec::new();
    programs.push(Program::from_body(random_body(rng, 0), 10 + rng.gen_below(40)));
    for core in 1..num_cores {
        let body = random_body(rng, core);
        programs.push(if rng.gen_below(2) == 1 {
            Program::endless(body)
        } else {
            Program::from_body(body, 5 + rng.gen_below(60))
        });
    }
    for m in pair {
        for (core, prog) in programs.iter().enumerate() {
            m.load_program(CoreId::new(core), prog.clone());
        }
    }
}

/// Asserts every observable of the two machines is identical.
fn assert_machines_identical(skip: &Machine, step: &Machine, what: &str) {
    assert_eq!(skip.now(), step.now(), "{what}: cycle counters diverged");
    assert_eq!(skip.trace().events(), step.trace().events(), "{what}: trace diverged");
    assert_eq!(skip.bus().stats(), step.bus().stats(), "{what}: bus stats diverged");
    assert_eq!(
        skip.memory_controller().map(|r| r.stats()),
        step.memory_controller().map(|r| r.stats()),
        "{what}: mc stats diverged"
    );
    assert_eq!(skip.dram().stats(), step.dram().stats(), "{what}: dram stats diverged");
    for i in 0..skip.config().num_cores {
        let id = CoreId::new(i);
        let (a, b) = (skip.pmc().core(id), step.pmc().core(id));
        assert_eq!(a.records, b.records, "{what}: core {i} request records diverged");
        assert_eq!(a.gamma_histogram, b.gamma_histogram, "{what}: core {i} gamma histogram");
        assert_eq!(
            a.gamma_histogram_at(ResourceId::MEMORY_CONTROLLER),
            b.gamma_histogram_at(ResourceId::MEMORY_CONTROLLER),
            "{what}: core {i} mc gamma histogram"
        );
        assert_eq!(a.contender_histogram, b.contender_histogram, "{what}: core {i} contenders");
        assert_eq!(a.sb_stall_cycles, b.sb_stall_cycles, "{what}: core {i} store stalls");
        assert_eq!(skip.dl1_stats(id), step.dl1_stats(id), "{what}: core {i} dl1 stats");
        assert_eq!(skip.l2().stats(id), step.l2().stats(id), "{what}: core {i} l2 stats");
    }
}

/// One machine per stepping mode over the same configuration.
fn paired(mut cfg: MachineConfig) -> (Machine, Machine) {
    cfg.quiescence_skip = true;
    let skip = Machine::new(cfg.clone()).expect("config");
    cfg.quiescence_skip = false;
    let step = Machine::new(cfg).expect("config");
    (skip, step)
}

/// Runs `body` for `cases` pseudo-random cases drawn from a fixed seed.
fn for_cases(seed: u64, cases: usize, mut body: impl FnMut(usize, &mut KernelRng)) {
    let mut rng = KernelRng::seed_from_u64(seed);
    for case in 0..cases {
        body(case, &mut rng);
    }
}

/// `run()` to completion: identical summaries, traces, stats, and PMCs
/// across randomized arbiters, topologies, and workloads. Runs that
/// starve (fixed priority / TDMA against endless contenders) must agree
/// on the budget error instead.
#[test]
fn event_driven_run_equals_per_cycle_stepping() {
    for_cases(0xED01, 24, |case, rng| {
        let cfg = random_config(rng);
        let what = format!("case {case} ({cfg:?})");
        let (mut skip, mut step) = paired(cfg);
        load_random_workload(rng, [&mut skip, &mut step]);
        let a = skip.run();
        let b = step.run();
        assert_eq!(a, b, "{what}: run results diverged");
        assert_machines_identical(&skip, &step, &what);
    });
}

/// `run_for()` over endless workloads: both modes land on the exact
/// requested cycle with identical state.
#[test]
fn event_driven_run_for_equals_per_cycle_stepping() {
    for_cases(0xED02, 12, |case, rng| {
        let cfg = random_config(rng);
        let what = format!("case {case} ({cfg:?})");
        let horizon = 2_000 + rng.gen_below(4_000);
        let (mut skip, mut step) = paired(cfg);
        let num_cores = skip.config().num_cores;
        let mut bodies = Vec::new();
        for core in 0..num_cores {
            bodies.push(random_body(rng, core));
        }
        for m in [&mut skip, &mut step] {
            for (core, body) in bodies.iter().enumerate() {
                m.load_program(CoreId::new(core), Program::endless(body.clone()));
            }
        }
        let a = skip.run_for(horizon);
        let b = step.run_for(horizon);
        assert_eq!(a, b, "{what}: summaries diverged");
        assert_eq!(a.cycles, horizon, "{what}: run_for must stop exactly at the horizon");
        assert_machines_identical(&skip, &step, &what);
    });
}

/// Budget exhaustion is identical too: same error, same stopping cycle.
#[test]
fn event_driven_budget_exhaustion_matches() {
    for_cases(0xED03, 8, |case, rng| {
        let mut cfg = random_config(rng);
        cfg.max_cycles = 50 + rng.gen_below(300);
        let (mut skip, mut step) = paired(cfg);
        load_random_workload(rng, [&mut skip, &mut step]);
        let a = skip.run();
        let b = step.run();
        assert_eq!(a, b, "case {case}: run results diverged");
        assert_eq!(skip.now(), step.now(), "case {case}: stopping cycle diverged");
    });
}

/// The two-level reference preset (bus + FIFO controller queue), pinned
/// explicitly: a DRAM-bound miss storm where the skip path matters most.
#[test]
fn event_driven_matches_on_ngmp_two_level_miss_storm() {
    let mut cfg = MachineConfig::ngmp_two_level();
    cfg.record_trace = true;
    let (mut skip, mut step) = paired(cfg.clone());
    for m in [&mut skip, &mut step] {
        // Finite scua over the L2-miss kernel's body, endless contenders.
        let scua = Program::from_body(rsk_l2_miss(&cfg, CoreId::new(0)).body().to_vec(), 40);
        m.load_program(CoreId::new(0), scua);
        for i in 1..4 {
            m.load_program(CoreId::new(i), rsk_l2_miss(&cfg, CoreId::new(i)));
        }
    }
    let a = skip.run().expect("skip run");
    let b = step.run().expect("step run");
    assert_eq!(a, b);
    assert_machines_identical(&skip, &step, "ngmp_two_level miss storm");
    assert!(
        skip.pmc().core(CoreId::new(0)).requests_at(ResourceId::MEMORY_CONTROLLER) > 0,
        "the workload must actually exercise the controller queue"
    );
}
