//! Cross-crate validation of the synchrony effect (§3) and the γ(δ)
//! algebra (Eq. 2): the cycle-accurate machine must reproduce the
//! analytic model point by point.

use rrb_analysis::gamma::GammaModel;
use rrb_analysis::Histogram;
use rrb_kernels::{rsk, rsk_nop, AccessKind};
use rrb_sim::{CoreId, Machine, MachineConfig, Program};

fn gamma_histogram_of(cfg: &MachineConfig, scua: Program) -> Histogram {
    let mut m = Machine::new(cfg.clone()).expect("config");
    m.load_program(CoreId::new(0), scua);
    for i in 1..cfg.num_cores {
        m.load_program(CoreId::new(i), rsk(AccessKind::Load, cfg, CoreId::new(i)));
    }
    m.run().expect("run");
    let pmc = m.pmc().core(CoreId::new(0));
    Histogram::from_bins(pmc.gamma_histogram.iter().map(|(&g, &n)| (g, n)))
}

#[test]
fn machine_gamma_matches_eq2_across_k_on_toy_bus() {
    // On the toy bus (ubd = 6, δ_rsk = 1) the dominant per-request γ for
    // rsk-nop(load, k) must equal γ(1 + k) of Eq. 2, for every k over
    // two periods.
    let cfg = MachineConfig::toy(4, 2);
    let model = GammaModel::new(cfg.ubd());
    for k in 0..=13usize {
        let h = gamma_histogram_of(&cfg, rsk_nop(AccessKind::Load, k, &cfg, CoreId::new(0), 300));
        let expected = model.gamma(1 + k as u64);
        assert_eq!(
            h.mode(),
            Some(expected),
            "k = {k}: histogram {:?}",
            h.iter().collect::<Vec<_>>()
        );
        assert!(h.fraction(expected) > 0.9, "k = {k}: synchrony must dominate");
    }
}

#[test]
fn machine_gamma_matches_eq2_on_ngmp_at_salient_points() {
    // Spot-check the 27-cycle bus at the tooth's edges: the peak
    // (δ ≡ 1 mod 27), the zero (δ ≡ 0), and one interior point.
    let cfg = MachineConfig::ngmp_ref();
    let model = GammaModel::new(27);
    for k in [0usize, 12, 26, 27, 53] {
        let h = gamma_histogram_of(&cfg, rsk_nop(AccessKind::Load, k, &cfg, CoreId::new(0), 200));
        let expected = model.gamma(1 + k as u64);
        assert_eq!(h.mode(), Some(expected), "k = {k}");
    }
}

#[test]
fn variant_architecture_shifts_the_tooth_by_three() {
    // δ_rsk = 4 on var: mode γ for k nops equals γ(4 + k).
    let cfg = MachineConfig::ngmp_var();
    let model = GammaModel::new(27);
    for k in [0usize, 5, 23, 24] {
        let h = gamma_histogram_of(&cfg, rsk_nop(AccessKind::Load, k, &cfg, CoreId::new(0), 200));
        assert_eq!(h.mode(), Some(model.gamma(4 + k as u64)), "k = {k}");
    }
}

#[test]
fn synchrony_mode_covers_98_percent_of_requests() {
    // §5.2: "most of the requests, 98% of them, have the same contention
    // delay".
    let cfg = MachineConfig::ngmp_ref();
    let h = gamma_histogram_of(&cfg, rsk_nop(AccessKind::Load, 0, &cfg, CoreId::new(0), 2000));
    let mode = h.mode().expect("requests observed");
    assert_eq!(mode, 26);
    assert!(
        h.fraction(mode) >= 0.98,
        "mode fraction {:.3} below the paper's 98%",
        h.fraction(mode)
    );
}

#[test]
fn gamma_never_exceeds_eq1_bound() {
    // Eq. 1 is an upper bound for *every* request of *any* program.
    let cfg = MachineConfig::ngmp_ref();
    for k in [0usize, 3, 9] {
        let h = gamma_histogram_of(&cfg, rsk_nop(AccessKind::Load, k, &cfg, CoreId::new(0), 300));
        assert!(h.max().expect("non-empty") <= cfg.ubd(), "k = {k}");
    }
    // Stores too (they reach exactly ubd, never beyond).
    let h = gamma_histogram_of(&cfg, rsk_nop(AccessKind::Store, 0, &cfg, CoreId::new(0), 300));
    assert_eq!(h.max().expect("non-empty"), cfg.ubd());
}

#[test]
fn store_requests_reach_full_ubd_under_saturation() {
    // §5.3: buffered stores inject with δ = 0 and suffer the full ubd.
    let cfg = MachineConfig::ngmp_ref();
    let h = gamma_histogram_of(&cfg, rsk_nop(AccessKind::Store, 0, &cfg, CoreId::new(0), 500));
    assert_eq!(h.mode(), Some(27));
}

#[test]
fn isolated_scua_suffers_no_contention() {
    let cfg = MachineConfig::ngmp_ref();
    let mut m = Machine::new(cfg.clone()).expect("config");
    m.load_program(CoreId::new(0), rsk_nop(AccessKind::Load, 2, &cfg, CoreId::new(0), 200));
    m.run().expect("run");
    assert_eq!(m.pmc().core(CoreId::new(0)).max_gamma(), Some(0));
}
