//! Equivalence properties for machine reuse and steady-state skipping.
//!
//! Batched execution rests on two "indistinguishable from a fresh run"
//! contracts:
//!
//! 1. **Arena reset** — `Machine::reset_to` rewinds a machine to a
//!    just-built state without reallocating; the `rrb` crate's
//!    `MachineArena` reuses one machine across every run of a batch.
//!    A reused machine must be **cycle-identical** to a fresh-built
//!    one: same trace event stream, same `RunSummary`, same
//!    per-resource statistics, same PMC histograms, same DL1/L2 stats.
//! 2. **Period skip** — `MachineConfig::period_skip` lets the run loop
//!    fast-forward whole periods of a periodic steady state. The
//!    skipping run must be cycle-identical to the full simulation.
//!
//! Both properties are driven with randomized configurations and
//! workloads (including the two-level NGMP topology) from fixed seeds
//! through the workspace's own deterministic [`KernelRng`], so
//! failures reproduce exactly.

use rrb::campaign::RunSpec;
use rrb::executor::MachineArena;
use rrb_kernels::{rsk_l2_miss, KernelRng};
use rrb_sim::{
    ArbiterKind, CoreId, Instr, Machine, MachineConfig, McQueueConfig, Program, ResourceId,
};

/// Draws one of the five arbitration policies; TDMA slots always fit the
/// longest transaction of `cfg` (otherwise validation rejects them).
fn random_arbiter(rng: &mut KernelRng, worst_occupancy: u64) -> ArbiterKind {
    match rng.gen_below(5) {
        0 => ArbiterKind::RoundRobin,
        1 => ArbiterKind::FixedPriority,
        2 => ArbiterKind::Fifo,
        3 => ArbiterKind::Tdma { slot_cycles: worst_occupancy + rng.gen_below(12) },
        _ => ArbiterKind::GroupedRoundRobin { group_size: 1 + rng.gen_below(3) as usize },
    }
}

/// A random machine over the reference substrate: 2–4 cores, any bus
/// arbiter, optionally a chained memory-controller queue. Unlike the
/// event-driven property, the presets here include the two-level NGMP
/// topology, and the store-buffer depth and L2 geometry vary — exactly
/// the state an arena reset must rebuild or resize.
fn random_config(rng: &mut KernelRng) -> MachineConfig {
    let mut cfg = match rng.gen_below(4) {
        0 => MachineConfig::ngmp_ref(),
        1 => MachineConfig::ngmp_var(),
        2 => MachineConfig::ngmp_two_level(),
        _ => MachineConfig::toy(4, 1 + rng.gen_below(6)),
    };
    cfg.num_cores = 2 + rng.gen_below(3) as usize;
    let worst_bus = cfg
        .topology
        .bus
        .l2_hit_occupancy
        .max(cfg.topology.bus.transfer_occupancy)
        .max(cfg.topology.bus.store_occupancy);
    cfg.topology.bus.arbiter = random_arbiter(rng, worst_bus);
    if cfg.topology.mc.is_none() && rng.gen_below(2) == 1 {
        let service_occupancy = 2 + rng.gen_below(8);
        cfg.topology.mc = Some(McQueueConfig {
            service_occupancy,
            arbiter: random_arbiter(rng, service_occupancy),
        });
    }
    cfg.store_buffer.entries = 1 + rng.gen_below(8) as usize;
    cfg.record_requests = true;
    cfg.record_trace = true;
    cfg.max_cycles = 150_000;
    cfg.validate().expect("generated config must validate");
    cfg
}

/// A random program body mixing DL1-thrashing (L2-hitting) loads,
/// L2-missing loads, stores, nops, and ALU ops, in per-core address
/// regions.
fn random_body(rng: &mut KernelRng, core: usize) -> Vec<Instr> {
    let mut body = Vec::new();
    let len = 3 + rng.gen_below(10);
    for slot in 0..len {
        match rng.gen_below(6) {
            0 | 1 => body.push(Instr::load(32 * 1024 + (slot % 6) * 4096)),
            2 => body.push(Instr::load(
                0x4000_0000 + 0x0400_0000 * core as u64 + rng.gen_below(64) * 4096,
            )),
            3 => body.push(Instr::store(0x0009_0000 + rng.gen_below(16) * 32)),
            4 => body.push(Instr::Nop),
            _ => body.push(Instr::Alu { latency: 1 + rng.gen_below(4) }),
        }
    }
    body
}

/// A random workload: a finite scua on core 0, endless or finite
/// contenders on the rest.
fn random_workload(rng: &mut KernelRng, num_cores: usize) -> Vec<Program> {
    let mut programs = Vec::new();
    programs.push(Program::from_body(random_body(rng, 0), 10 + rng.gen_below(40)));
    for core in 1..num_cores {
        let body = random_body(rng, core);
        programs.push(if rng.gen_below(2) == 1 {
            Program::endless(body)
        } else {
            Program::from_body(body, 5 + rng.gen_below(60))
        });
    }
    programs
}

/// Asserts every observable of the two machines is identical.
fn assert_machines_identical(reused: &Machine, fresh: &Machine, what: &str) {
    assert_eq!(reused.now(), fresh.now(), "{what}: cycle counters diverged");
    assert_eq!(reused.trace().events(), fresh.trace().events(), "{what}: trace diverged");
    assert_eq!(reused.bus().stats(), fresh.bus().stats(), "{what}: bus stats diverged");
    assert_eq!(
        reused.memory_controller().map(|r| r.stats()),
        fresh.memory_controller().map(|r| r.stats()),
        "{what}: mc stats diverged"
    );
    assert_eq!(reused.dram().stats(), fresh.dram().stats(), "{what}: dram stats diverged");
    for i in 0..reused.config().num_cores {
        let id = CoreId::new(i);
        let (a, b) = (reused.pmc().core(id), fresh.pmc().core(id));
        assert_eq!(a, b, "{what}: core {i} PMC state diverged");
        assert_eq!(
            a.gamma_histogram_at(ResourceId::MEMORY_CONTROLLER),
            b.gamma_histogram_at(ResourceId::MEMORY_CONTROLLER),
            "{what}: core {i} mc gamma histogram"
        );
        assert_eq!(reused.dl1_stats(id), fresh.dl1_stats(id), "{what}: core {i} dl1 stats");
        assert_eq!(reused.l2().stats(id), fresh.l2().stats(id), "{what}: core {i} l2 stats");
    }
}

/// Runs `body` for `cases` pseudo-random cases drawn from a fixed seed.
fn for_cases(seed: u64, cases: usize, mut body: impl FnMut(usize, &mut KernelRng)) {
    let mut rng = KernelRng::seed_from_u64(seed);
    for case in 0..cases {
        body(case, &mut rng);
    }
}

/// One machine carried through a chain of heterogeneous random
/// configurations via `reset_to` is cycle-identical — trace stream,
/// summary, stats, PMCs — to a fresh machine built per configuration.
#[test]
fn reset_machine_matches_fresh_build_across_random_configs() {
    let mut reused: Option<Machine> = None;
    for_cases(0xA4E1, 20, |case, rng| {
        let cfg = random_config(rng);
        let what = format!("case {case} ({cfg:?})");
        let programs = random_workload(rng, cfg.num_cores);

        let m = match reused.take() {
            Some(mut m) => {
                m.reset_to(cfg.clone()).expect("reset must accept a valid config");
                m
            }
            None => Machine::new(cfg.clone()).expect("config"),
        };
        let mut m = m;
        let mut fresh = Machine::new(cfg).expect("config");
        for (core, prog) in programs.iter().enumerate() {
            m.load_program(CoreId::new(core), prog.clone());
            fresh.load_program(CoreId::new(core), prog.clone());
        }
        let a = m.run();
        let b = fresh.run();
        assert_eq!(a, b, "{what}: run results diverged");
        assert_machines_identical(&m, &fresh, &what);
        reused = Some(m);
    });
}

/// A failed reset (invalid config) must leave the machine fully usable:
/// the next valid reset still matches a fresh build.
#[test]
fn failed_reset_leaves_machine_intact() {
    let mut rng = KernelRng::seed_from_u64(0xA4E2);
    let cfg = MachineConfig::toy(4, 2);
    let mut m = Machine::new(cfg.clone()).expect("config");

    let mut bad = cfg.clone();
    bad.num_cores = 0;
    assert!(m.reset_to(bad).is_err(), "a zero-core config must be rejected");

    let programs = random_workload(&mut rng, cfg.num_cores);
    m.reset_to(cfg.clone()).expect("valid reset after a failed one");
    let mut fresh = Machine::new(cfg).expect("config");
    for (core, prog) in programs.iter().enumerate() {
        m.load_program(CoreId::new(core), prog.clone());
        fresh.load_program(CoreId::new(core), prog.clone());
    }
    assert_eq!(m.run(), fresh.run(), "post-failure run diverged");
    assert_machines_identical(&m, &fresh, "after failed reset");
}

/// The two-level NGMP preset pinned explicitly through the arena: the
/// DRAM-bound miss storm exercises the controller queue, DRAM bank
/// state, and both PMC histogram families across a reset.
#[test]
fn arena_matches_fresh_machines_on_two_level_miss_storm() {
    let cfg = MachineConfig::ngmp_two_level();
    let scua = Program::from_body(rsk_l2_miss(&cfg, CoreId::new(0)).body().to_vec(), 40);
    let contenders: Vec<Program> = (1..4).map(|i| rsk_l2_miss(&cfg, CoreId::new(i))).collect();
    let spec = RunSpec::contended("two-level-storm", cfg.clone(), scua.clone(), contenders.clone());
    let toy_spec = RunSpec::isolated("toy-breather", MachineConfig::toy(2, 2), scua);

    let mut arena = MachineArena::new();
    // Warm the arena on a different topology first, then hop back and
    // forth: every execution must equal a cold arena's.
    for round in 0..3 {
        let warm = arena.execute(&spec).expect("warm two-level run");
        let cold = MachineArena::new().execute(&spec).expect("cold two-level run");
        assert_eq!(warm, cold, "round {round}: warm arena diverged from cold on two-level");
        let warm_toy = arena.execute(&toy_spec).expect("warm toy run");
        let cold_toy = MachineArena::new().execute(&toy_spec).expect("cold toy run");
        assert_eq!(warm_toy, cold_toy, "round {round}: warm arena diverged on toy");
    }
}

/// Steady-state fast-forward (`period_skip`) is cycle-identical to the
/// full simulation: same run result, same ending cycle, same stats and
/// histograms — across randomized arbiters, topologies, and workloads.
/// (Periodic skipping only engages when per-request records and traces
/// are off, matching what the batch executor runs with.)
#[test]
fn period_skip_matches_full_simulation() {
    for_cases(0xA4E3, 24, |case, rng| {
        let mut cfg = random_config(rng);
        cfg.record_requests = false;
        cfg.record_trace = false;
        let what = format!("case {case} ({cfg:?})");
        // Long finite scuas give the steady state room to establish and
        // the skip room to fire; endless contenders keep the bus loaded.
        let mut programs = Vec::new();
        programs.push(Program::from_body(random_body(rng, 0), 200 + rng.gen_below(1_000)));
        for core in 1..cfg.num_cores {
            programs.push(Program::endless(random_body(rng, core)));
        }

        cfg.period_skip = true;
        let mut skip = Machine::new(cfg.clone()).expect("config");
        cfg.period_skip = false;
        let mut full = Machine::new(cfg).expect("config");
        for (core, prog) in programs.iter().enumerate() {
            skip.load_program(CoreId::new(core), prog.clone());
            full.load_program(CoreId::new(core), prog.clone());
        }
        let a = skip.run();
        let b = full.run();
        assert_eq!(a, b, "{what}: run results diverged");
        assert_machines_identical(&skip, &full, &what);
        assert!(
            skip.steps_executed() <= full.steps_executed(),
            "{what}: the skipping run must never step more than the full one"
        );
    });
}
