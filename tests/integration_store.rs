//! End-to-end validation of the persistent result store: the
//! acceptance contract (a warm re-run of the shipped
//! `ngmp_sweep.json` experiment simulates *nothing* and renders
//! byte-identical output) and the robustness contract (damaged or
//! concurrently written entries cause re-execution with a warning —
//! never a panic, never silent wrong reuse).

use rrb::campaign::{Campaign, CampaignGrid, CampaignResult, GridScenario};
use rrb::spec::ExperimentSpec;
use rrb::store::{ResultStore, StoreLookup};
use rrb_kernels::AccessKind;
use rrb_sim::MachineConfig;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A scratch store directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> Self {
        let path = std::env::temp_dir()
            .join(format!("rrb-integration-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        ScratchDir(path)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn open(dir: &ScratchDir) -> Arc<ResultStore> {
    Arc::new(ResultStore::open(&dir.0).expect("open store"))
}

fn small_grid() -> CampaignGrid {
    CampaignGrid::new(GridScenario::Sweep, MachineConfig::toy(4, 2))
        .contender_accesses(vec![AccessKind::Load, AccessKind::Store])
        .iterations(vec![60])
        .max_k(10)
}

fn run_with(store: &Arc<ResultStore>, jobs: usize) -> CampaignResult {
    Campaign::builder().grid(&small_grid()).jobs(jobs).store(store.clone()).build().run()
}

/// Every entry file currently in the store, newest path order not
/// guaranteed — used by the damage tests.
fn entry_files(dir: &ScratchDir) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir.0.join("entries"))
        .expect("entries dir")
        .flatten()
        .map(|f| f.path())
        .collect();
    files.sort();
    files
}

#[test]
fn warm_rerun_of_the_shipped_ngmp_sweep_simulates_nothing() {
    // The acceptance pin: the checked-in experiment file, run cold then
    // warm against one store. The warm pass must answer every unique
    // run from the store (zero simulations, per the campaign's run
    // counters) and render byte-identical json/csv/text.
    let spec_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/experiments/ngmp_sweep.json");
    let spec = ExperimentSpec::from_file(&spec_path).expect("shipped spec parses");
    let dir = ScratchDir::new("ngmp-sweep");
    let store = open(&dir);

    let campaign =
        |store: &Arc<ResultStore>| spec.to_campaign_builder(2).store(store.clone()).build().run();

    let cold = campaign(&store);
    assert!(cold.stats.executed_runs > 0, "cold run must simulate: {:?}", cold.stats);
    assert_eq!(cold.stats.store_hits, 0, "{:?}", cold.stats);
    assert_eq!(cold.stats.failed_runs, 0, "the shipped spec runs clean: {:?}", cold.stats);
    assert_eq!(
        cold.stats.store_writes, cold.stats.executed_runs,
        "every unique run is recorded: {:?}",
        cold.stats
    );

    let warm = campaign(&store);
    assert_eq!(warm.stats.executed_runs, 0, "warm run must simulate nothing: {:?}", warm.stats);
    assert_eq!(
        warm.stats.store_hits, cold.stats.executed_runs,
        "every unique run resumes from the store: {:?}",
        warm.stats
    );
    assert!(warm.warnings.is_empty(), "{:?}", warm.warnings);

    assert_eq!(cold.to_json(), warm.to_json(), "json must be byte-identical");
    assert_eq!(cold.to_csv(), warm.to_csv(), "csv must be byte-identical");
    assert_eq!(cold.render_text(), warm.render_text(), "text must be byte-identical");
}

#[test]
fn reopened_store_resumes_across_processes_boundaries() {
    // Drop and reopen the store between runs: entries are durable, not
    // tied to the process-lifetime dedup cache.
    let dir = ScratchDir::new("reopen");
    let cold = run_with(&open(&dir), 2);
    let warm = run_with(&open(&dir), 1);
    assert_eq!(warm.stats.executed_runs, 0, "{:?}", warm.stats);
    assert_eq!(cold.to_json(), warm.to_json());
    assert_eq!(cold.to_csv(), warm.to_csv());
    assert_eq!(cold.render_text(), warm.render_text());
}

#[test]
fn damaged_entries_reexecute_with_a_warning_and_heal() {
    let dir = ScratchDir::new("damage");
    let store = open(&dir);
    let cold = run_with(&store, 1);
    let files = entry_files(&dir);
    assert_eq!(files.len(), cold.stats.store_writes, "one entry per recorded run");
    assert!(files.len() >= 4, "need at least four entries to damage");

    // Four kinds of damage, one entry each: truncation, a bit flip in
    // the payload, a wrong format version, and a half-written torn file
    // (what a concurrent writer without atomic rename would leave).
    let rewrite = |path: &Path, f: &dyn Fn(String) -> String| {
        let text = std::fs::read_to_string(path).expect("read entry");
        std::fs::write(path, f(text)).expect("write damage");
    };
    rewrite(&files[0], &|t| t[..t.len() / 3].to_string());
    rewrite(&files[1], &|t| t.replace("\"execution_time\": ", "\"execution_time\": 4"));
    rewrite(&files[2], &|t| t.replace("\"format\": 1", "\"format\": 77"));
    rewrite(&files[3], &|t| format!("{{\"format\": 1, \"torn\": true{}", &t[..40]));

    let healed = run_with(&store, 4);
    assert_eq!(healed.stats.executed_runs, 4, "all four damaged runs re-execute");
    assert_eq!(healed.warnings.len(), 4, "one warning per rejected entry: {:?}", healed.warnings);
    for warning in &healed.warnings {
        assert!(warning.contains("re-executing"), "{warning}");
    }
    assert_eq!(healed.to_json(), cold.to_json(), "damage never changes results");
    assert_eq!(healed.to_csv(), cold.to_csv());

    // The re-execution rewrote the damaged entries: a further run is
    // fully warm and warning-free again.
    let warm = run_with(&store, 1);
    assert_eq!(warm.stats.executed_runs, 0, "{:?}", warm.stats);
    assert!(warm.warnings.is_empty(), "{:?}", warm.warnings);
    assert_eq!(warm.to_json(), cold.to_json());
}

#[test]
fn concurrent_campaigns_share_a_store_without_panics_or_drift() {
    // Several parallel campaigns race on one store: lookups, inserts,
    // and atomic renames interleave freely. Every campaign must finish
    // with byte-identical output, and afterwards the store must be
    // fully valid and fully warm.
    let dir = ScratchDir::new("concurrent");
    let store = open(&dir);
    let reference = Campaign::builder().grid(&small_grid()).jobs(1).build().run();
    let outputs: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let store = store.clone();
                scope.spawn(move || run_with(&store, 1 + i % 3).to_json())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("campaign thread")).collect()
    });
    for output in &outputs {
        assert_eq!(output, &reference.to_json(), "racing campaigns must agree");
    }
    let report = open(&dir).verify();
    assert!(report.problems.is_empty(), "{report:?}");
    assert!(report.ok > 0);
    let warm = run_with(&store, 2);
    assert_eq!(warm.stats.executed_runs, 0, "{:?}", warm.stats);
}

#[test]
fn failed_runs_are_never_cached() {
    // A scenario whose runs fail at execution time (starved cycle
    // budget): the campaign records errors, the store stays empty, and
    // a re-run re-executes — failures must not be resumed.
    let mut starved = MachineConfig::toy(4, 2);
    starved.max_cycles = 40;
    let dir = ScratchDir::new("failures");
    let store = open(&dir);
    let run = || {
        Campaign::builder()
            .grid(&CampaignGrid::new(GridScenario::Naive, starved.clone()))
            .store(store.clone())
            .build()
            .run()
    };
    let first = run();
    assert!(first.stats.failed_runs > 0, "{:?}", first.stats);
    assert_eq!(store.stats().entries, 0, "failed runs must not be recorded");
    let second = run();
    assert!(second.stats.executed_runs > 0, "failures re-execute: {:?}", second.stats);
    assert_eq!(first.to_json(), second.to_json());
}

#[test]
fn store_lookup_respects_label_independence_like_dedup() {
    // The store keys on the measurement (config + programs), not the
    // label — the same identity the in-memory dedup table uses — so a
    // renamed scenario still resumes.
    let dir = ScratchDir::new("labels");
    let store = open(&dir);
    let cfg = MachineConfig::toy(4, 2);
    let scua = rrb_kernels::rsk_nop(AccessKind::Load, 1, &cfg, rrb_sim::CoreId::new(0), 40);
    let spec = rrb::campaign::RunSpec::isolated("original", cfg, scua);
    let (result, _, _) = rrb::executor::Executor::new().run_in(
        &mut rrb::executor::MachineArena::new(),
        &spec,
        Some(&store),
    );
    let measurement = result.expect("run succeeds");
    let mut renamed = spec.clone();
    renamed.label = String::from("renamed");
    match store.lookup(&renamed) {
        StoreLookup::Hit(cached) => assert_eq!(cached, measurement),
        other => panic!("expected a hit for the renamed spec, got {other:?}"),
    }
}
