//! Soundness property for the interference-flow composition: for
//! randomized arbiters, topologies, and workloads, the flow-composed
//! bound for the observed core — derived from must/may-classified demand
//! profiles and propagated through the topology — dominates the composed
//! per-request delay the simulator actually observes on core 0
//! (`max γ_bus + max γ_mc`), while never exceeding the saturating sum it
//! claims to tighten.
//!
//! This is the pin that keeps `rrb analyze --composed` honest, and it
//! also pins the serialisation theorem the mc term rests on: when the
//! bus transfer phase is at least as long as the controller's service
//! occupancy and the mc arbiter is work-conserving, *no* core ever
//! observes a non-zero mc delay — every admission finds an empty queue.
//! Cases are drawn from the workspace's deterministic [`KernelRng`], so
//! a failure reproduces exactly.

use rrb::statics::{classified_profile, compose_flow, profile_program, CoreProfile, StaticBound};
use rrb_kernels::{rsk, AccessKind, KernelRng, RskBuilder};
use rrb_sim::{ArbiterKind, CoreId, Machine, MachineConfig, McQueueConfig, Program, ResourceId};

/// Runs `body` for `cases` pseudo-random cases drawn from a fixed seed.
fn for_cases(seed: u64, cases: usize, mut body: impl FnMut(&mut KernelRng)) {
    let mut rng = KernelRng::seed_from_u64(seed);
    for _ in 0..cases {
        body(&mut rng);
    }
}

/// A random bus arbiter that cannot starve by construction (TDMA slots
/// always fit the worst occupancy).
fn random_arbiter(rng: &mut KernelRng, num_cores: usize, worst_occ: u64) -> ArbiterKind {
    match rng.gen_below(5) {
        0 => ArbiterKind::RoundRobin,
        1 => ArbiterKind::Fifo,
        2 => ArbiterKind::FixedPriority,
        3 => ArbiterKind::Tdma { slot_cycles: worst_occ + rng.gen_below(4) },
        _ => ArbiterKind::GroupedRoundRobin {
            group_size: rng.gen_range(1, num_cores as u64 + 1) as usize,
        },
    }
}

/// A random machine: 2-4 cores, bus latency 1-4, one of the five bus
/// arbiters, and (most of the time, since the flow layer is what is
/// under test) a chained memory-controller queue. Service occupancies
/// both below and above the bus transfer phase are drawn, so the mc
/// term exercises the serialised-to-zero path *and* the queueing
/// fallback.
fn random_machine(rng: &mut KernelRng) -> MachineConfig {
    let num_cores = rng.gen_range(2, 5) as usize;
    let l_bus = rng.gen_range(1, 5);
    let mut cfg = MachineConfig::toy(num_cores, l_bus);
    cfg.topology.bus.arbiter = random_arbiter(rng, num_cores, l_bus);
    if rng.gen_below(4) != 0 {
        cfg.topology.mc = Some(McQueueConfig {
            service_occupancy: rng.gen_range(1, 7),
            arbiter: if rng.gen_below(2) == 0 {
                ArbiterKind::RoundRobin
            } else {
                ArbiterKind::Fifo
            },
        });
    }
    cfg
}

/// The workload under test: a finite rsk-nop on core 0 (the paper's
/// software-under-analysis shape) and a random contender per other core.
fn random_workload(rng: &mut KernelRng, cfg: &MachineConfig) -> Vec<Program> {
    let access = |rng: &mut KernelRng| {
        if rng.gen_below(2) == 0 {
            AccessKind::Load
        } else {
            AccessKind::Store
        }
    };
    let fp = cfg.topology.bus.arbiter == ArbiterKind::FixedPriority;
    let scua = RskBuilder::new(access(rng))
        .nops(rng.gen_below(8) as usize)
        .iterations(rng.gen_range(10, 50))
        .build(cfg, CoreId::new(0));
    let mut programs = vec![scua];
    for core in 1..cfg.num_cores {
        let core = CoreId::new(core);
        if !fp && rng.gen_below(3) == 0 {
            programs.push(
                RskBuilder::new(access(rng))
                    .nops(rng.gen_below(4) as usize)
                    .iterations(rng.gen_range(10, 40))
                    .build(cfg, core),
            );
        } else {
            programs.push(rsk(access(rng), cfg, core));
        }
    }
    programs
}

/// The core property chain: `measured composed γ (core 0) ≤ flow
/// composed ≤ classified saturating sum`, and the flow bound also never
/// exceeds the envelope static total `rrb analyze` reports.
#[test]
fn flow_composed_bound_dominates_measured_composed_gamma() {
    for_cases(0x46, 24, |rng| {
        let cfg = random_machine(rng);
        let programs = random_workload(rng, &cfg);
        let profiles: Vec<CoreProfile> = programs
            .iter()
            .enumerate()
            .map(|(i, p)| classified_profile(p, &cfg, CoreId::new(i)))
            .collect();
        let composed = compose_flow(&cfg, &profiles);
        let envelope = StaticBound::analyze(
            &cfg,
            &programs.iter().map(|p| profile_program(p, &cfg)).collect::<Vec<_>>(),
        );

        if let (Some(flow), Some(sum)) = (composed.flow_total(), composed.sum_total()) {
            assert!(
                flow <= sum,
                "flow {flow} > sum {sum} (arbiter {:?}, {} cores, mc {:?})",
                cfg.topology.bus.arbiter,
                cfg.num_cores,
                cfg.topology.mc,
            );
        }
        if let (Some(flow), Some(envelope_total)) = (composed.flow_total(), envelope.total()) {
            assert!(
                flow <= envelope_total,
                "flow {flow} > envelope static {envelope_total} (arbiter {:?}, mc {:?})",
                cfg.topology.bus.arbiter,
                cfg.topology.mc,
            );
        }

        let mut m = Machine::new(cfg.clone()).expect("config");
        for (i, p) in programs.into_iter().enumerate() {
            m.load_program(CoreId::new(i), p);
        }
        m.run().expect("run");

        let scua = m.pmc().core(CoreId::new(0));
        let measured = scua.max_gamma_at(ResourceId::BUS).unwrap_or(0)
            + scua.max_gamma_at(ResourceId::MEMORY_CONTROLLER).unwrap_or(0);
        if let Some(flow) = composed.flow_total() {
            assert!(
                measured <= flow,
                "core 0 measured composed γ {measured} > flow bound {flow} \
                 (arbiter {:?}, {} cores, mc {:?})",
                cfg.topology.bus.arbiter,
                cfg.num_cores,
                cfg.topology.mc,
            );
        }
    });
}

/// The serialisation theorem behind the flow mc term, pinned directly:
/// when every admission is the completion of a bus transfer phase at
/// least as long as the controller's service occupancy and the mc
/// arbiter is work-conserving, the queue is empty at every arrival — no
/// core, on any workload, ever observes a non-zero mc delay.
#[test]
fn serialised_work_conserving_controller_never_queues() {
    for_cases(0x47, 24, |rng| {
        let mut cfg = random_machine(rng);
        let transfer = cfg.topology.bus.transfer_occupancy;
        cfg.topology.mc = Some(McQueueConfig {
            service_occupancy: rng.gen_range(1, transfer + 1),
            arbiter: if rng.gen_below(2) == 0 {
                ArbiterKind::RoundRobin
            } else {
                ArbiterKind::Fifo
            },
        });
        let programs = random_workload(rng, &cfg);
        let mut m = Machine::new(cfg.clone()).expect("config");
        for (i, p) in programs.into_iter().enumerate() {
            m.load_program(CoreId::new(i), p);
        }
        m.run().expect("run");
        for core in 0..cfg.num_cores {
            let observed =
                m.pmc().core(CoreId::new(core)).max_gamma_at(ResourceId::MEMORY_CONTROLLER);
            assert!(
                observed.unwrap_or(0) == 0,
                "core {core} observed mc γ {observed:?} with service {} <= transfer {transfer} \
                 (bus arbiter {:?})",
                cfg.topology.mc.as_ref().map_or(0, |mc| mc.service_occupancy),
                cfg.topology.bus.arbiter,
            );
        }
    });
}
