//! Experiments as data: load a checked-in experiment file, inspect it,
//! and run it through the campaign runner.
//!
//! The spec (`examples/experiments/ngmp_sweep.json`) sweeps the rsk-nop
//! ubd derivation across 2–4 cores of the reference NGMP machine and
//! adds two explicit kernel workloads — all declared in JSON, no Rust
//! required. `rrb run examples/experiments/ngmp_sweep.json` executes the
//! same file from the command line.
//!
//! ```sh
//! cargo run --release -p rrb --example run_experiment
//! ```

use rrb::spec::ExperimentSpec;

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/experiments/ngmp_sweep.json");
    let spec = ExperimentSpec::from_file(path).expect("load the checked-in experiment file");
    // The checked-in file is the canonical rendering of its own parse:
    // specs round-trip losslessly, so file bytes == re-rendered bytes.
    let text = std::fs::read_to_string(path).expect("re-read for the canonical-form check");
    assert_eq!(spec.to_text(), text, "the spec file must stay in canonical form");

    println!(
        "experiment `{}` (spec hash {:016x}): {} scenario(s), ubd truth = {} cycles",
        spec.name,
        spec.spec_hash(),
        spec.scenarios().len(),
        spec.machine.ubd(),
    );
    let result =
        spec.to_campaign(std::thread::available_parallelism().map_or(1, |n| n.get())).run();
    print!("{}", result.render_text());

    // The 3- and 4-core cells must rediscover ubd = (Nc - 1) * 9 exactly.
    // On 2 cores the single load contender cannot keep the bus fully
    // saturated, so the measured period lands a cycle high (a safe
    // over-estimate; §4.3's fix is store contenders) — bound it instead.
    for (cores, expected) in [(3u64, 18u64), (4, 27)] {
        let name = format!("derive/rr/c{cores}/load-vs-load/i120");
        let report = result
            .reports
            .iter()
            .find(|r| r.scenario == name)
            .unwrap_or_else(|| panic!("missing report {name}"));
        assert_eq!(report.metric_u64("ubd_m"), Some(expected), "{name}");
    }
    let c2 = result
        .reports
        .iter()
        .find(|r| r.scenario == "derive/rr/c2/load-vs-load/i120")
        .expect("missing 2-core report");
    assert!(c2.metric_u64("ubd_m") >= Some(9), "2-core bound must stay conservative");
    println!("\nevery core count rediscovered its (Nc-1)*9 bound from the spec file alone.");
}
