//! Quickstart for the composable resource-topology API: chain the
//! memory-controller queue behind the bus with [`MachineBuilder`], watch
//! both contention points in the per-resource counters, and derive a
//! bound whose per-resource contributions sum to the total.
//!
//! ```sh
//! cargo run --release --example topology_two_level
//! ```
//!
//! The reference NGMP has *two* arbitrated contention points on the
//! request path (§5.1: "contention only happens on the bus and the
//! memory controller"). `MachineConfig::ngmp_ref()` models only the bus;
//! this example builds the two-level topology, where every L2 miss
//! arbitrates twice: once for the bus, once for controller admission.

use rrb::methodology::{derive_ubd, MethodologyConfig};
use rrb::report;
use rrb_sim::{CoreId, Instr, MachineBuilder, MachineConfig, McQueueConfig, Program, ResourceId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compose the topology resource by resource: the ngmp_ref base,
    //    then the FIFO admission queue of the memory controller.
    let mut machine = MachineBuilder::new() // ngmp_ref base
        .then_memory_controller(McQueueConfig::ngmp())
        .build()?;

    println!("request-path topology and its Eq. 1 decomposition:");
    for term in machine.config().ubd_breakdown() {
        println!("  {:<4} ubd contribution = {} cycles", term.resource, term.ubd);
    }
    println!("  total ubd            = {} cycles\n", machine.config().ubd());

    // 2. Drive two cores through working sets larger than their L2
    //    partitions, so every load misses and exercises *both* resources.
    let miss_body = |core: usize| -> Vec<Instr> {
        let base = 0x4000_0000 + 0x0400_0000 * core as u64;
        (0..64).map(|i| Instr::load(base + i * 4096)).collect()
    };
    for i in 0..2 {
        machine.load_program(CoreId::new(i), Program::endless(miss_body(i)));
    }
    let summary = machine.run_for(30_000);

    // 3. Each resource owns its own counters, so the two contention
    //    points are observable independently.
    println!("after 30k cycles of two L2-missing streams:");
    println!("  bus utilisation      = {:.3}", summary.bus_utilization);
    println!("  mc  utilisation      = {:.3}", summary.mc_utilization.unwrap_or(0.0));
    for i in 0..2 {
        let pmc = machine.pmc().core(CoreId::new(i));
        println!(
            "  core {i}: max gamma bus = {:?}, max gamma mc = {:?}",
            pmc.max_gamma(),
            pmc.max_gamma_at(ResourceId::MEMORY_CONTROLLER)
        );
    }

    // 4. The measurement-based methodology reports per-resource
    //    contributions that sum to the total it derives.
    let mut platform = MachineConfig::toy(4, 2);
    platform.topology.mc =
        Some(McQueueConfig { service_occupancy: 2, arbiter: rrb_sim::ArbiterKind::Fifo });
    println!("\nderiving the bound on a two-level toy platform...\n");
    let derivation = derive_ubd(&platform, &MethodologyConfig::fast())?;
    print!("{}", report::render_derivation(&derivation));
    assert_eq!(
        derivation.resource_contributions.iter().map(|c| c.ubd_m).sum::<u64>(),
        derivation.total_ubd_m(),
        "per-resource contributions must sum to the reported total"
    );
    Ok(())
}
