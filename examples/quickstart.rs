//! Quickstart: derive the worst-case bus contention bound (`ubd`) of a
//! multicore platform from measurements alone.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The platform here is the paper's toy bus (Figures 2–3): 4 cores behind
//! a round-robin bus whose per-request occupancy is 2 cycles, so the true
//! `ubd` is `(4 - 1) * 2 = 6`. The methodology is never told any of that —
//! it only runs kernels and reads execution times, as a user of a COTS
//! processor would.

use rrb::methodology::{derive_ubd, MethodologyConfig};
use rrb::report;
use rrb_sim::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The platform under test. Pretend its timing manual is missing.
    let platform = MachineConfig::toy(4, 2);

    println!("deriving ubd on a 4-core round-robin bus...\n");
    let derivation = derive_ubd(&platform, &MethodologyConfig::fast())?;

    println!("{}", report::render_derivation(&derivation));
    println!("slowdown saw-tooth d_bus(k):");
    println!("{}", report::render_sawtooth(&derivation.slowdowns, 8));

    // Only now do we peek at the hidden truth to grade the answer.
    let truth = platform.ubd();
    println!("hidden truth: ubd = {truth}");
    assert_eq!(derivation.ubd_m, truth, "methodology must recover ubd exactly");
    println!("=> recovered exactly, with no bus-timing knowledge.");
    Ok(())
}
