//! The paper's headline experiment (§5.3): derive `ubd` on the NGMP-like
//! reference and variant architectures and compare against the naive
//! estimators that prior practice used.
//!
//! ```sh
//! cargo run --release --example derive_ubd_cots
//! ```
//!
//! Expected outcome (matching the paper):
//!
//! * naive rsk-vs-rsk reads 26 on `ref` and 23 on `var` — both unsound;
//! * the rsk-nop methodology reads 27 on both — exact, and identical
//!   across the two setups even though their injection times differ.

use rrb::methodology::{derive_ubd, MethodologyConfig};
use rrb::naive::naive_rsk_vs_rsk;
use rrb::report;
use rrb_kernels::AccessKind;
use rrb_sim::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (name, cfg) in [
        ("ref (DL1 latency 1, delta_rsk = 1)", MachineConfig::ngmp_ref()),
        ("var (DL1 latency 4, delta_rsk = 4)", MachineConfig::ngmp_var()),
    ] {
        println!("=== architecture: {name} ===\n");

        let naive = naive_rsk_vs_rsk(&cfg, AccessKind::Load, 500)?;
        let mut mcfg = MethodologyConfig::paper();
        mcfg.iterations = 300; // enough for a clean tooth, quick to run
        let derivation = derive_ubd(&cfg, &mcfg)?;

        println!("{}", report::render_comparison(&naive, &derivation, cfg.bus_ubd()));
        println!("audit trail:");
        println!("{}", report::render_derivation(&derivation));
    }
    Ok(())
}
