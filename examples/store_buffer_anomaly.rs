//! The store-buffer experiment of §5.3 / Fig. 7(b).
//!
//! ```sh
//! cargo run --release --example store_buffer_anomaly
//! ```
//!
//! Write-through stores retire into the store buffer and drain to the bus
//! back to back (injection time zero) — the only situation in which a
//! request actually suffers the full `ubd`. The slowdown of a store
//! `rsk-nop(store, k)` therefore shows *one* saw-tooth period and then
//! collapses to (near) zero: once `k` exceeds `ubd`, the buffer always
//! has a free slot before the next store arrives and hides the bus
//! latency entirely.

use rrb::experiment::measure_slowdown;
use rrb::report;
use rrb_kernels::{rsk, rsk_nop, AccessKind};
use rrb_sim::{CoreId, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MachineConfig::ngmp_ref();
    let iterations = 300;
    let max_k = 70;

    println!("store rsk-nop(k) against 3 load rsk — slowdown vs k\n");
    let mut slowdowns = Vec::new();
    for k in 0..=max_k {
        let scua = rsk_nop(AccessKind::Store, k, &cfg, CoreId::new(0), iterations);
        let m = measure_slowdown(&cfg, scua, |c| rsk(AccessKind::Load, &cfg, c))?;
        slowdowns.push(m.det());
    }

    println!("{}", report::render_sawtooth(&slowdowns, 10));

    // The paper's observation: the first ~ubd ks show a decaying
    // saw-tooth; beyond one period, the buffer hides the latency.
    let ubd = cfg.ubd() as usize;
    let early_peak = *slowdowns[..ubd].iter().max().expect("non-empty");
    let late_peak = *slowdowns[ubd + 5..].iter().max().expect("non-empty");
    println!("peak slowdown in first period : {early_peak}");
    println!("peak slowdown after k > ubd+4 : {late_peak}");
    assert!(
        late_peak * 10 < early_peak.max(1),
        "store buffer must hide the bus latency once k exceeds ubd"
    );
    println!("=> beyond one period the store buffer fully hides contention, as in Fig. 7(b).");
    Ok(())
}
