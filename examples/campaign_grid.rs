//! A measurement campaign over a parameter grid: derive `ubd` for every
//! arbiter × contender-access combination in one deduplicated, parallel
//! batch.
//!
//! ```sh
//! cargo run --release --example campaign_grid
//! ```
//!
//! Expected outcome: both round-robin cells derive the hidden `ubd = 6`.
//! The non-RR cells illustrate §4.3's applicability caveat: most are
//! refused by the confidence checks (recorded as per-scenario failures
//! while the rest of the campaign completes normally), and any number a
//! non-RR cell does produce is *not* the RR bound — knowing the arbiter
//! is round-robin is an input to the methodology.

use rrb::campaign::{Campaign, CampaignGrid, GridScenario};
use rrb_kernels::AccessKind;
use rrb_sim::{ArbiterKind, MachineConfig};

fn main() {
    // The platform under test: 4 cores, round-robin bus, l_bus = 2.
    let base = MachineConfig::toy(4, 2);

    let grid = CampaignGrid::new(GridScenario::Derive, base)
        .arbiters(vec![ArbiterKind::RoundRobin, ArbiterKind::FixedPriority, ArbiterKind::Fifo])
        .contender_accesses(vec![AccessKind::Load, AccessKind::Store])
        .iterations(vec![100]);
    println!("campaign: {} grid cells\n", grid.cell_count());

    let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let result = Campaign::builder().grid(&grid).jobs(jobs).build().run();

    print!("{}", result.render_text());
    println!("\nfirst records as CSV:");
    for line in result.to_csv().lines().take(5) {
        println!("  {line}");
    }

    let derived: Vec<_> = result
        .reports
        .iter()
        .filter_map(|r| r.metric_u64("ubd_m").map(|u| (r.scenario.clone(), u)))
        .collect();
    println!("\nderived bounds: {derived:?}");
    let rr: Vec<_> = derived.iter().filter(|(name, _)| name.contains("/rr/")).collect();
    assert_eq!(rr.len(), 2, "both RR cells must produce a bound");
    assert!(rr.iter().all(|(_, u)| *u == 6), "RR cells must recover ubd = 6");
}
