//! A contention audit of a realistic software component — the workflow a
//! timing analyst would run on a COTS platform (§4.3, "Using ubd_m").
//!
//! ```sh
//! cargo run --release --example contention_audit
//! ```
//!
//! 1. Derive `ubd_m` once per platform with the rsk-nop methodology.
//! 2. Measure the component in isolation: execution time and bus
//!    requests (`nr`).
//! 3. Pad the execution-time bound: `ETB = ExecTime_isol + nr × ubd_m`.
//! 4. Sanity-check the bound against actual contended runs.

use rrb::experiment::{run_contended, run_isolated};
use rrb::methodology::{derive_ubd, MethodologyConfig};
use rrb_analysis::EtbPadding;
use rrb_kernels::{rsk, AccessKind, AutobenchKernel};
use rrb_sim::{CoreId, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MachineConfig::ngmp_ref();

    // 1. Platform characterisation (one-off).
    let mut mcfg = MethodologyConfig::paper();
    mcfg.iterations = 300;
    let derivation = derive_ubd(&cfg, &mcfg)?;
    println!("platform ubd_m = {} cycles\n", derivation.ubd_m);

    // 2. The software component under analysis: an automotive kernel.
    let kernel = AutobenchKernel::Canrdr;
    let scua = kernel.profile().program(&cfg, CoreId::new(0), 1234, Some(400));
    let isolated = run_isolated(&cfg, scua.clone())?;
    println!(
        "{kernel}: isolation time {} cycles, {} bus requests",
        isolated.execution_time, isolated.bus_requests
    );

    // 3. The execution-time bound.
    let padding = EtbPadding::new(isolated.bus_requests, derivation.ubd_m);
    let etb = padding.etb(isolated.execution_time);
    println!("{padding}");
    println!("ETB = {etb} cycles\n");

    // 4. Validation: no contended run may exceed the bound.
    for trial in 0..3 {
        let contended = run_contended(&cfg, scua.clone(), |c| rsk(AccessKind::Load, &cfg, c))?;
        let slack = etb as i64 - contended.execution_time as i64;
        println!(
            "trial {trial}: contended time {} cycles (ETB slack {slack} cycles, max gamma {})",
            contended.execution_time,
            contended.gamma_histogram.max().unwrap_or(0),
        );
        assert!(contended.execution_time <= etb, "ETB violated: the bound is unsound");
    }
    println!("\n=> every contended run fits under the padded bound.");
    Ok(())
}
